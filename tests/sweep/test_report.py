"""Trajectory reporting: normalized entries, the simperf curve gate,
and the generated EXPERIMENTS.md trend table."""

import pytest

from repro.sweep import (
    BEGIN_MARK,
    END_MARK,
    append_trajectory,
    build_entry,
    derive_summaries,
    gate_simperf,
    load_trajectory,
    render_trend_table,
    update_experiments_md,
)

SWEEP_DOC = {
    "schema": 1,
    "name": "smoke",
    "code_version": "abc",
    "scale": "scaled",
    "cells": [
        {
            "id": "pingpong[protocol=tcp]",
            "experiment": "pingpong",
            "params": {"protocol": "tcp"},
            "digest": "d1",
            "rows": [
                {
                    "label": "pingpong tcp",
                    "measured": {"MBps": 58.6, "ok": True, "note": "x"},
                    "paper": {},
                    "note": "",
                }
            ],
        }
    ],
}

SIMPERF_DOC = {
    "schema": 1,
    "benches": {
        "kernel_events": {"normalized": 0.5},
        "fig8_cell": {"normalized": 0.25},
    },
}


def _entry(**kwargs):
    return build_entry(SWEEP_DOC, git_sha="deadbeef", date="2026-08-07", **kwargs)


def test_entry_is_normalized_and_numeric_only():
    entry = _entry(simperf_doc=SIMPERF_DOC)
    scores = entry["cells"]["pingpong[protocol=tcp]"]["pingpong tcp"]
    assert scores == {"MBps": 58.6}  # bools and strings dropped
    assert entry["simperf"] == {"fig8_cell": 0.25, "kernel_events": 0.5}
    assert entry["git_sha"] == "deadbeef"
    # run id is a pure function of (sha, sweep doc)
    assert entry["run_id"] == _entry()["run_id"]


def test_append_and_load_roundtrip(tmp_path):
    path = str(tmp_path / "BENCH_trajectory.json")
    assert load_trajectory(path)["entries"] == []
    doc = append_trajectory(path, _entry(simperf_doc=SIMPERF_DOC))
    assert len(doc["entries"]) == 1
    doc = append_trajectory(path, _entry(simperf_doc=SIMPERF_DOC))
    assert len(load_trajectory(path)["entries"]) == 2


@pytest.mark.parametrize(
    "last, current, n_failures",
    [
        (None, {"kernel_events": 0.1}, 0),  # first entry: nothing to gate
        ({"kernel_events": 0.5}, {"kernel_events": 0.4}, 0),  # -20% ok
        ({"kernel_events": 0.5}, {"kernel_events": 0.3}, 1),  # -40% fails
        ({"kernel_events": 0.5}, {}, 1),  # scores vanished
        ({"a": 0.5, "b": 0.5}, {"a": 0.1, "b": 0.1}, 2),
    ],
)
def test_gate_simperf(last, current, n_failures):
    last_entry = {"simperf": last} if last is not None else None
    entry = {"simperf": current}
    failures = gate_simperf(last_entry, entry, max_regression=0.30)
    assert len(failures) == n_failures


def test_trend_table_renders_entries():
    trajectory = {"entries": [_entry(simperf_doc=SIMPERF_DOC)]}
    table = render_trend_table(trajectory)
    assert "| run |" in table.splitlines()[0]
    assert _entry()["run_id"] in table
    assert "0.500" in table  # kernel_events normalized
    empty = render_trend_table({"entries": []})
    assert "no recorded runs" in empty


def test_update_experiments_md_replaces_between_markers(tmp_path):
    path = tmp_path / "EXPERIMENTS.md"
    path.write_text(f"# header\n\n{BEGIN_MARK}\nstale\n{END_MARK}\n\n## after\n")
    update_experiments_md(str(path), {"entries": [_entry()]})
    text = path.read_text()
    assert "stale" not in text
    assert _entry()["run_id"] in text
    assert text.startswith("# header")
    assert text.rstrip().endswith("## after")
    # idempotent: markers survive the rewrite
    update_experiments_md(str(path), {"entries": [_entry()]})
    assert text == path.read_text()


# ---------------------------------------------------------------------------
# derived summaries: SCTP/TCP ratios and loss-crossover points
# ---------------------------------------------------------------------------
PAIRED_CELLS = {
    "pingpong[protocol=sctp,size=4096,loss=0]": {"row": {"MBps": 50.0, "rtt_ms": 2.0}},
    "pingpong[protocol=tcp,size=4096,loss=0]": {"row": {"MBps": 40.0, "rtt_ms": 2.5}},
    "pingpong[protocol=sctp,size=4096,loss=0.01]": {"row": {"MBps": 30.0}},
    "pingpong[protocol=tcp,size=4096,loss=0.01]": {"row": {"MBps": 40.0}},
    # unpaired: no tcp counterpart, must be skipped
    "farm[protocol=sctp,fanout=2]": {"row": {"elapsed_s": 1.0}},
    # protocol-free: not a comparison cell at all
    "nas[kernel=IS]": {"row": {"mops": 3.0}},
}


def test_derive_summaries_ratios():
    derived = derive_summaries(PAIRED_CELLS)
    ratios = derived["sctp_tcp_ratio"]
    assert set(ratios) == {
        "pingpong[size=4096,loss=0]",
        "pingpong[size=4096,loss=0.01]",
    }
    assert ratios["pingpong[size=4096,loss=0]"] == {
        "MBps": 50.0 / 40.0,
        "rtt_ms": 2.0 / 2.5,
    }
    assert ratios["pingpong[size=4096,loss=0.01]"] == {"MBps": 30.0 / 40.0}


def test_derive_summaries_finds_loss_crossover():
    derived = derive_summaries(PAIRED_CELLS)
    # MBps ratio goes 1.25 (loss=0) -> 0.75 (loss=0.01): crosses 1.0
    crossings = derived["loss_crossover"]["pingpong[size=4096]"]
    assert crossings == [
        {
            "metric": "MBps",
            "loss_below": 0.0,
            "loss_above": 0.01,
            "ratio_below": 1.25,
            "ratio_above": 0.75,
        }
    ]


def test_derive_summaries_no_crossover_without_sign_change():
    cells = {
        "pingpong[protocol=sctp,loss=0]": {"r": {"MBps": 50.0}},
        "pingpong[protocol=tcp,loss=0]": {"r": {"MBps": 40.0}},
        "pingpong[protocol=sctp,loss=0.01]": {"r": {"MBps": 45.0}},
        "pingpong[protocol=tcp,loss=0.01]": {"r": {"MBps": 40.0}},
    }
    assert derive_summaries(cells)["loss_crossover"] == {}


def test_derive_summaries_skips_zero_denominators():
    cells = {
        "farm[protocol=sctp,loss=0]": {"r": {"elapsed_s": 1.0}},
        "farm[protocol=tcp,loss=0]": {"r": {"elapsed_s": 0.0}},
    }
    assert derive_summaries(cells)["sctp_tcp_ratio"] == {}


def test_build_entry_embeds_derived_and_table_renders_it():
    sweep_doc = {
        "schema": 1,
        "name": "smoke",
        "code_version": "abc",
        "scale": "scaled",
        "cells": [
            {
                "id": "pingpong[protocol=sctp,loss=0]",
                "rows": [{"label": "s", "measured": {"MBps": 50.0}}],
            },
            {
                "id": "pingpong[protocol=tcp,loss=0]",
                "rows": [{"label": "t", "measured": {"MBps": 40.0}}],
            },
        ],
    }
    entry = build_entry(sweep_doc, git_sha="deadbeef", date="2026-08-07")
    assert entry["derived"]["sctp_tcp_ratio"] == {
        "pingpong[loss=0]": {"MBps": 1.25}
    }
    table = render_trend_table({"entries": [entry]})
    assert "sctp/tcp (med)" in table.splitlines()[0]
    assert "1.250" in table


def test_trend_table_backfills_derived_for_old_entries():
    # an entry committed before the derived field existed still gets
    # ratio columns, computed on the fly from its cells
    entry = build_entry(
        {
            "schema": 1,
            "name": "smoke",
            "code_version": "abc",
            "scale": "scaled",
            "cells": [
                {
                    "id": "pingpong[protocol=sctp,loss=0]",
                    "rows": [{"label": "s", "measured": {"MBps": 50.0}}],
                },
                {
                    "id": "pingpong[protocol=tcp,loss=0]",
                    "rows": [{"label": "t", "measured": {"MBps": 40.0}}],
                },
            ],
        },
        git_sha="deadbeef",
        date="2026-08-07",
    )
    del entry["derived"]
    table = render_trend_table({"entries": [entry]})
    assert "1.250" in table


def test_update_experiments_md_appends_when_markers_missing(tmp_path):
    path = tmp_path / "EXPERIMENTS.md"
    path.write_text("# doc")
    update_experiments_md(str(path), {"entries": []})
    text = path.read_text()
    assert BEGIN_MARK in text and END_MARK in text
    assert "## Perf/result trajectory" in text
