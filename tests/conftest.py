"""Shared fixtures/helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.network import ClusterConfig, build_cluster
from repro.simkernel import Kernel
from repro.transport.sctp import OneToManySocket, SCTPConfig, SCTPEndpoint
from repro.transport.tcp import TCPConfig, TCPEndpoint, TCPListener, TCPSocket


def make_cluster(n_hosts=2, loss_rate=0.0, seed=1, n_paths=1, **kw):
    """A kernel + cluster pair for transport-level tests."""
    kernel = Kernel(seed=seed)
    cluster = build_cluster(
        kernel,
        ClusterConfig(
            n_hosts=n_hosts, loss_rate=loss_rate, n_paths=n_paths, **kw
        ),
    )
    return kernel, cluster


def tcp_pair(kernel, cluster, port=5000, config=None):
    """Two connected TCP sockets (client on host 0, server on host 1)."""
    e0 = TCPEndpoint(cluster.hosts[0], config or TCPConfig())
    e1 = TCPEndpoint(cluster.hosts[1], config or TCPConfig())
    listener = TCPListener(e1, port)
    client = TCPSocket.connect(e0, cluster.host_address(1), port, config=config)
    accept_fut = listener.accept()
    connect_fut = client.connected()
    kernel.run_until(connect_fut, limit=60_000_000_000)
    kernel.run_until(accept_fut, limit=60_000_000_000)
    server = accept_fut.result()
    return client, server, (e0, e1, listener)


def sctp_pair(kernel, cluster, port=6000, config=None):
    """Two one-to-many SCTP sockets with an established association.

    Returns (client_sock, server_sock, client_assoc_id)."""
    cfg = config or SCTPConfig()
    e0 = SCTPEndpoint(cluster.hosts[0], cfg)
    e1 = SCTPEndpoint(cluster.hosts[1], cfg)
    s0 = OneToManySocket(e0, port, cfg)
    s1 = OneToManySocket(e1, port, cfg)
    fut = s0.connect(cluster.host_address(1), port)
    assoc_id = kernel.run_until(fut, limit=60_000_000_000)
    return s0, s1, assoc_id


def drain(kernel, limit_ns=60_000_000_000):
    """Run the kernel until quiescent or the limit."""
    kernel.run(until=kernel.now + limit_ns)


@pytest.fixture
def kernel():
    """A fresh deterministic kernel."""
    return Kernel(seed=1)
