"""Mixed small/large workload: the RFC 8260 latency claim, end to end."""

import pytest

from repro.workloads.interleave_mix import run_interleave_mix

LIMIT = 2_000_000_000_000
BOTH = pytest.mark.parametrize("rpi", ["tcp", "sctp"])


@BOTH
def test_mix_basic_metrics(rpi):
    r = run_interleave_mix(rpi, rounds=3, seed=1, limit_ns=LIMIT)
    assert r.rounds == 3
    assert len(r.small_latency_ns) == 3
    assert r.small_latency_mean_ns > 0
    assert r.small_latency_max_ns >= r.small_latency_mean_ns
    assert r.bulk_throughput_mbps > 0
    assert r.elapsed_ns > 0


def test_interleaving_with_rr_cuts_small_latency():
    """The subsystem's acceptance claim: I-DATA + a non-FCFS scheduler
    improves small-message latency under concurrent bulk, at no bulk
    throughput cost worth mentioning."""
    base = run_interleave_mix(
        "sctp", interleaving=False, scheduler="fcfs", seed=1, limit_ns=LIMIT
    )
    idata = run_interleave_mix(
        "sctp", interleaving=True, scheduler="rr", seed=1, limit_ns=LIMIT
    )
    assert idata.small_latency_mean_ns < base.small_latency_mean_ns
    assert idata.small_latency_max_ns < base.small_latency_max_ns
    assert idata.bulk_throughput_mbps > 0.9 * base.bulk_throughput_mbps


def test_interleaving_off_matches_legacy_virtual_time():
    """interleaving=False + fcfs must be the legacy wire schedule — the
    same run with the flags at their defaults lands on the identical
    virtual-time result."""
    default = run_interleave_mix("sctp", rounds=3, seed=1, limit_ns=LIMIT)
    explicit = run_interleave_mix(
        "sctp", rounds=3, interleaving=False, scheduler="fcfs", seed=1,
        limit_ns=LIMIT,
    )
    assert default.elapsed_ns == explicit.elapsed_ns
    assert default.small_latency_ns == explicit.small_latency_ns
