"""Bulk Processor Farm: correctness across protocols, loss, fanout."""

import pytest

from repro.workloads.farm import FarmParams, run_farm

LIMIT = 30_000_000_000_000
BOTH = pytest.mark.parametrize("rpi", ["tcp", "sctp"])


def small(num_tasks=60, fanout=1, task_size=30 * 1024):
    return FarmParams(
        num_tasks=num_tasks,
        task_size=task_size,
        fanout=fanout,
        compute_seconds_per_task=0.002,
    )


@BOTH
def test_all_tasks_complete(rpi):
    r = run_farm(rpi, small(), seed=1, limit_ns=LIMIT)
    assert r.tasks_done == 60
    assert sum(r.per_worker_tasks.values()) == 60


@BOTH
def test_all_tasks_complete_under_loss(rpi):
    r = run_farm(rpi, small(), loss_rate=0.02, seed=2, limit_ns=LIMIT)
    assert r.tasks_done == 60


@BOTH
@pytest.mark.parametrize("fanout", [1, 3, 10])
def test_fanout_variants(rpi, fanout):
    r = run_farm(rpi, small(num_tasks=50, fanout=fanout), seed=3, limit_ns=LIMIT)
    assert r.tasks_done == 50


def test_fanout_under_loss_with_streams_and_without():
    params = small(num_tasks=40, fanout=10)
    for streams in (10, 1):
        r = run_farm(
            "sctp", params, loss_rate=0.02, seed=4, num_streams=streams,
            limit_ns=LIMIT,
        )
        assert r.tasks_done == 40


def test_long_tasks():
    r = run_farm("sctp", small(num_tasks=20, task_size=300 * 1024), seed=5, limit_ns=LIMIT)
    assert r.tasks_done == 20


def test_work_is_distributed_across_workers():
    r = run_farm("sctp", small(num_tasks=70), seed=6, limit_ns=LIMIT)
    busy_workers = [w for w, n in r.per_worker_tasks.items() if n > 0]
    assert len(busy_workers) == 7  # every worker got something


def test_tcp_degrades_more_than_sctp_under_loss():
    """The paper's headline at workload scale (Fig. 10's direction)."""
    params = small(num_tasks=150, fanout=1)
    tcp = run_farm("tcp", params, loss_rate=0.02, seed=1, limit_ns=LIMIT)
    sctp = run_farm("sctp", params, loss_rate=0.02, seed=1, limit_ns=LIMIT)
    assert tcp.elapsed_s > 1.5 * sctp.elapsed_s


def test_two_process_farm_edge_case():
    # one manager, one worker
    r = run_farm("sctp", small(num_tasks=25), n_procs=2, seed=7, limit_ns=LIMIT)
    assert r.tasks_done == 25
    assert r.per_worker_tasks == {1: 25}
