"""Fig. 4/5 microscenario invariants."""

from repro.workloads.hol_micro import run_hol_micro

LIMIT = 20_000_000_000_000


def test_tcp_never_delivers_b_first():
    """TCP's byte stream makes out-of-order completion impossible."""
    r = run_hol_micro("tcp", iterations=20, loss_rate=0.02, seed=2, limit_ns=LIMIT)
    assert r.b_completed_first == 0


def test_sctp_overtakes_under_loss():
    r = run_hol_micro("sctp", iterations=40, loss_rate=0.02, seed=2, limit_ns=LIMIT)
    assert r.b_completed_first > 0


def test_single_stream_sctp_cannot_overtake():
    """num_streams=1 removes the mechanism: behaves like a byte pipe."""
    r = run_hol_micro(
        "sctp", iterations=30, loss_rate=0.02, seed=2, num_streams=1,
        limit_ns=LIMIT,
    )
    assert r.b_completed_first == 0


def test_no_loss_no_overtaking_needed():
    tcp = run_hol_micro("tcp", iterations=10, loss_rate=0.0, seed=1, limit_ns=LIMIT)
    sctp = run_hol_micro("sctp", iterations=10, loss_rate=0.0, seed=1, limit_ns=LIMIT)
    # without loss both deliver A first and waits are tiny
    assert tcp.b_completed_first == 0
    assert sctp.mean_first_completion_ns < 5_000_000
    assert tcp.mean_first_completion_ns < 5_000_000


def test_sctp_slashes_wait_under_loss():
    tcp = run_hol_micro("tcp", iterations=30, loss_rate=0.02, seed=3, limit_ns=LIMIT)
    sctp = run_hol_micro("sctp", iterations=30, loss_rate=0.02, seed=3, limit_ns=LIMIT)
    assert sctp.mean_first_completion_ns < tcp.mean_first_completion_ns
