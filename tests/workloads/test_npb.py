"""NPB mini-kernels: verification on both RPIs, determinism, classes."""

import pytest

from repro.workloads.npb import CLASSES, KERNELS, run_npb

LIMIT = 5_000_000_000_000
ALL = sorted(KERNELS)


@pytest.mark.parametrize("name", ALL)
@pytest.mark.parametrize("rpi", ["tcp", "sctp"])
def test_class_s_verifies(name, rpi):
    r = run_npb(name, "S", rpi=rpi, seed=1, limit_ns=LIMIT)
    assert r.verified, f"{name}.S failed on {rpi}: {r.detail}"
    assert r.mops > 0
    assert r.elapsed_ns > 0


@pytest.mark.parametrize("name", ALL)
def test_class_w_verifies(name):
    r = run_npb(name, "W", rpi="sctp", seed=1, limit_ns=LIMIT)
    assert r.verified, f"{name}.W failed: {r.detail}"


@pytest.mark.parametrize("name", ["EP", "IS", "CG"])
def test_verification_survives_loss(name):
    r = run_npb(name, "S", rpi="sctp", seed=2, loss_rate=0.02, limit_ns=LIMIT)
    assert r.verified, f"{name}.S under loss: {r.detail}"


def test_every_benchmark_has_all_classes():
    for name, classes in CLASSES.items():
        assert set(classes) == {"S", "W", "A", "B"}, name


def test_deterministic_given_seed():
    a = run_npb("CG", "S", rpi="sctp", seed=3, limit_ns=LIMIT)
    b = run_npb("CG", "S", rpi="sctp", seed=3, limit_ns=LIMIT)
    assert a.elapsed_ns == b.elapsed_ns
    assert a.total_flops == b.total_flops


def test_cg_converges():
    r = run_npb("CG", "S", rpi="sctp", seed=1, limit_ns=LIMIT)
    # detail reads "residual <start> -> <end>"
    start, end = (float(x) for x in r.detail.split()[1::2])
    assert end < start / 10


def test_mg_reduces_residual():
    r = run_npb("MG", "S", rpi="sctp", seed=1, limit_ns=LIMIT)
    parts = r.detail.split()  # "resnorm <a> -> <b> dims=..."
    start, end = float(parts[1]), float(parts[3])
    assert end < start


def test_mg_process_grid_factorization():
    from repro.workloads.npb.mg import coords_of, process_grid, rank_of

    assert process_grid(8) == (2, 2, 2)
    assert process_grid(4) == (1, 2, 2)
    assert process_grid(2) == (1, 1, 2)
    assert process_grid(1) == (1, 1, 1)
    dims = process_grid(8)
    for rank in range(8):
        assert rank_of(coords_of(rank, dims), dims) == rank


def test_class_scaling_increases_work():
    s = run_npb("IS", "S", rpi="sctp", seed=1, limit_ns=LIMIT)
    w = run_npb("IS", "W", rpi="sctp", seed=1, limit_ns=LIMIT)
    assert w.total_flops > 2 * s.total_flops


def test_two_rank_run():
    from repro.core.world import WorldConfig

    cfg = WorldConfig(n_procs=2, rpi="sctp", seed=1)
    r = run_npb("EP", "S", rpi="sctp", n_procs=2, config=cfg, limit_ns=LIMIT)
    assert r.verified
