"""MPBench ping-pong workload sanity."""

import pytest

from repro.workloads.mpbench import run_pingpong

LIMIT = 2_000_000_000_000
BOTH = pytest.mark.parametrize("rpi", ["tcp", "sctp"])


@BOTH
def test_pingpong_basic_metrics(rpi):
    r = run_pingpong(rpi, 8192, iterations=10, seed=1, limit_ns=LIMIT)
    assert r.message_size == 8192
    assert r.elapsed_ns > 0
    assert r.throughput_bytes_per_s > 0
    assert r.round_trip_s > 0


@BOTH
def test_throughput_grows_with_message_size(rpi):
    small = run_pingpong(rpi, 1024, iterations=10, seed=1, limit_ns=LIMIT)
    large = run_pingpong(rpi, 65536, iterations=10, seed=1, limit_ns=LIMIT)
    assert large.throughput_bytes_per_s > 2 * small.throughput_bytes_per_s


@BOTH
def test_loss_reduces_throughput(rpi):
    clean = run_pingpong(rpi, 30 * 1024, iterations=20, seed=2, limit_ns=LIMIT)
    lossy = run_pingpong(
        rpi, 30 * 1024, iterations=20, loss_rate=0.02, seed=2, limit_ns=LIMIT
    )
    assert lossy.throughput_bytes_per_s < clean.throughput_bytes_per_s


def test_pingpong_ignores_extra_ranks():
    from repro.core.world import WorldConfig

    cfg = WorldConfig(n_procs=4, rpi="sctp", seed=1)
    r = run_pingpong("sctp", 4096, iterations=5, config=cfg, limit_ns=LIMIT)
    assert r.elapsed_ns > 0  # ranks 2,3 idle without deadlocking the run


def test_deterministic_given_seed():
    a = run_pingpong("sctp", 16384, iterations=10, loss_rate=0.02, seed=5, limit_ns=LIMIT)
    b = run_pingpong("sctp", 16384, iterations=10, loss_rate=0.02, seed=5, limit_ns=LIMIT)
    assert a.elapsed_ns == b.elapsed_ns
