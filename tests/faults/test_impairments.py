"""Impairment models: behaviour, determinism, clone/bind, serialisation."""

import pytest

from repro.faults import (
    IMPAIRMENT_KINDS,
    BernoulliLoss,
    Blackhole,
    Corrupt,
    Delay,
    Duplicate,
    GilbertElliott,
    Impairment,
    Reorder,
)
from repro.network import Packet
from repro.simkernel import Kernel


def pkt(i=0):
    return Packet(src="a", dst="b", proto="t", payload=i, wire_size=100)


def run_through(imp, n=100):
    """Feed n packets through a bound impairment, return all emits."""
    out = []
    for i in range(n):
        out.extend(imp.process(pkt(i)))
    return out


# -- BernoulliLoss ---------------------------------------------------------
def test_bernoulli_zero_rate_passes_all_without_rng():
    k = Kernel(seed=1)
    imp = BernoulliLoss(0.0).bind(k, "s")
    before = imp.rng.getstate()
    out = run_through(imp)
    assert len(out) == 100 and imp.packets_dropped == 0
    assert imp.rng.getstate() == before, "idle impairment must not draw"


def test_bernoulli_total_loss():
    k = Kernel(seed=1)
    imp = BernoulliLoss(1.0).bind(k, "s")
    assert run_through(imp, 50) == [] and imp.packets_dropped == 50


def test_bernoulli_statistics():
    k = Kernel(seed=2)
    imp = BernoulliLoss(0.1).bind(k, "s")
    run_through(imp, 5000)
    assert 0.07 < imp.packets_dropped / 5000 < 0.13


# -- GilbertElliott --------------------------------------------------------
def test_gilbert_elliott_absorbs_into_bad_state():
    # p_enter=1, p_exit=0, loss_bad=1: first packet passes (GOOD, no
    # loss), every later packet is dropped — fully deterministic.
    k = Kernel(seed=1)
    imp = GilbertElliott(p_enter_bad=1.0, p_exit_bad=0.0, loss_bad=1.0)
    imp.bind(k, "s")
    out = run_through(imp, 20)
    assert len(out) == 1 and out[0][0].payload == 0
    assert imp.packets_dropped == 19 and imp.in_bad_state


def test_gilbert_elliott_bursts_are_correlated():
    k = Kernel(seed=3)
    imp = GilbertElliott(p_enter_bad=0.02, p_exit_bad=0.3, loss_bad=1.0)
    imp.bind(k, "s")
    drops = []
    for i in range(5000):
        drops.append(not imp.process(pkt(i)))
    # mean burst length 1/p_exit ≈ 3.3 → consecutive-drop pairs must be
    # far more common than under i.i.d. loss of the same overall rate
    pairs = sum(1 for a, b in zip(drops, drops[1:], strict=False) if a and b)
    rate = sum(drops) / len(drops)
    iid_pairs = rate * rate * len(drops)
    assert pairs > 2 * iid_pairs


# -- Blackhole / Corrupt / Duplicate / Reorder / Delay ---------------------
def test_blackhole_drops_everything():
    k = Kernel(seed=1)
    imp = Blackhole().bind(k, "s")
    assert run_through(imp, 30) == [] and imp.packets_dropped == 30


def test_corrupt_marks_but_forwards():
    k = Kernel(seed=1)
    imp = Corrupt(rate=1.0).bind(k, "s")
    out = run_through(imp, 10)
    assert len(out) == 10
    assert all(p.corrupted for p, _ in out)
    assert imp.packets_affected == 10 and imp.packets_dropped == 0


def test_duplicate_emits_fresh_wire_copy():
    k = Kernel(seed=1)
    imp = Duplicate(rate=1.0).bind(k, "s")
    out = imp.process(pkt(7))
    assert len(out) == 2
    orig, dup = out[0][0], out[1][0]
    assert dup.payload is orig.payload
    assert dup.pkt_id != orig.pkt_id


def test_reorder_delays_selected_packets():
    k = Kernel(seed=1)
    imp = Reorder(rate=1.0, delay_ns=5000).bind(k, "s")
    out = imp.process(pkt())
    assert out[0][1] == 5000 and imp.packets_affected == 1


def test_delay_with_jitter_bounds():
    k = Kernel(seed=4)
    imp = Delay(delay_ns=1000, jitter_ns=500).bind(k, "s")
    delays = [imp.process(pkt(i))[0][1] for i in range(200)]
    assert all(1000 <= d <= 1500 for d in delays)
    assert len(set(delays)) > 1, "jitter must actually vary"


# -- clone / bind lifecycle ------------------------------------------------
def test_clone_is_unbound_and_independent():
    k = Kernel(seed=1)
    proto = BernoulliLoss(0.5)
    a = proto.clone().bind(k, "a")
    b = proto.clone().bind(k, "b")
    assert not proto.bound and a.bound and b.bound
    run_through(a, 100)
    assert a.packets_seen == 100 and b.packets_seen == 0
    # separate named streams: a's draws never perturb b's
    drops_b = [not b.process(pkt(i)) for i in range(100)]
    k2 = Kernel(seed=1)
    b2 = proto.clone().bind(k2, "b")
    assert drops_b == [not b2.process(pkt(i)) for i in range(100)]


def test_bind_resets_counters_and_state():
    k = Kernel(seed=1)
    imp = GilbertElliott(p_enter_bad=1.0, p_exit_bad=0.0, loss_bad=1.0)
    imp.bind(k, "s")
    run_through(imp, 10)
    assert imp.packets_seen == 10 and imp.in_bad_state
    imp.bind(Kernel(seed=1), "s")
    assert imp.packets_seen == 0 and not imp.in_bad_state


def test_unbound_process_has_no_rng():
    imp = BernoulliLoss(0.5)
    assert not imp.bound
    with pytest.raises(AttributeError):
        imp.process(pkt())


# -- serialisation ---------------------------------------------------------
def test_dict_round_trip_every_kind():
    examples = [
        BernoulliLoss(0.25),
        GilbertElliott(p_enter_bad=0.1, p_exit_bad=0.5, loss_bad=0.8),
        Blackhole(),
        Corrupt(rate=0.02),
        Duplicate(rate=0.03),
        Reorder(rate=0.04, delay_ns=777),
        Delay(delay_ns=10, jitter_ns=5),
    ]
    assert {type(e).kind for e in examples} == set(IMPAIRMENT_KINDS)
    for imp in examples:
        back = Impairment.from_dict(imp.to_dict())
        assert type(back) is type(imp)
        assert back.to_dict() == imp.to_dict()


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown impairment kind"):
        Impairment.from_dict({"kind": "cosmic_rays"})


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        BernoulliLoss(1.5)
    with pytest.raises(ValueError):
        Corrupt(rate=-0.1)
    with pytest.raises(ValueError):
        Reorder(rate=0.1, delay_ns=0)
    with pytest.raises(ValueError):
        Delay(delay_ns=-1)
    with pytest.raises(ValueError):
        GilbertElliott(p_enter_bad=2.0)
