"""Acceptance: a multi-second mid-run primary-path blackhole, both stacks.

SCTP must fail over to the alternate path (path supervision declares
path 0 INACTIVE, retransmissions migrate) and resume delivery about one
min-RTO after the hole opens; TCP has no alternate path and must sit
through RTO exponential backoff until the hole closes.  Same-seed runs
must produce byte-identical metrics snapshots even with the fault armed.
"""

import json

import pytest

from repro.core.world import World, WorldConfig
from repro.faults import DeliveryWatch, primary_blackhole
from repro.metrics import MetricsCollector
from repro.simkernel import MILLISECOND, SECOND
from repro.transport.sctp import SCTPConfig
from repro.workloads.mpbench import make_pingpong

HOLE_START = 3 * MILLISECOND
# long enough for path supervision to accumulate path_max_retrans + 1
# timer errors (T3 backoff doubles: ~1 s, ~3 s after the hole opens)
HOLE_NS = 5 * SECOND
LIMIT_NS = 120 * SECOND


def run_blackhole(rpi, seed=1):
    config = WorldConfig(
        n_procs=2,
        rpi=rpi,
        seed=seed,
        n_paths=2,
        # tuned failure detection, as §3.5.1 recommends for MPI
        sctp_config=SCTPConfig(
            path_max_retrans=1, heartbeat_interval_ns=2 * SECOND
        ),
        scenario=primary_blackhole(HOLE_START, HOLE_NS),
    )
    world = World(config)
    watch = DeliveryWatch(rpi, fault_start_ns=HOLE_START)
    watch.attach(world.cluster.hosts)
    result = world.run(make_pingpong(30 * 1024, 20), limit_ns=LIMIT_NS)
    return world, watch, result


@pytest.fixture(scope="module")
def sctp_run():
    return run_blackhole("sctp")


@pytest.fixture(scope="module")
def tcp_run():
    return run_blackhole("tcp")


def test_sctp_fails_over(sctp_run):
    world, watch, result = sctp_run
    assert result.results[0] is not None, "run must complete despite the hole"
    totals = [ep.total_stats() for ep in world.sctp_endpoints]
    assert sum(t.failovers for t in totals) > 0, (
        "retransmissions must migrate to the alternate path"
    )
    assert sum(t.path_failures for t in totals) > 0, (
        "path supervision must declare the blackholed path INACTIVE"
    )
    assert sum(t.heartbeats_sent for t in totals) > 0, (
        "heartbeats must be probing the paths"
    )
    # failover needs one T3 expiry (min RTO 1 s) to notice the dead path
    assert watch.recovery_ns is not None
    assert 0 < watch.recovery_ns < 2 * SECOND


def test_tcp_stalls_through_backoff(tcp_run):
    world, watch, result = tcp_run
    assert result.results[0] is not None, "the hole closes; TCP must finish"
    totals = [ep.total_stats() for ep in world.tcp_endpoints]
    assert sum(t.rto_events for t in totals) > 0, (
        "single-homed TCP can only retransmit into the hole and back off"
    )
    # the application-visible outage covers the whole 2 s hole (plus the
    # last backed-off RTO overshooting the hole's end)
    assert watch.max_gap_ns >= HOLE_NS


def test_sctp_recovers_faster_than_tcp(sctp_run, tcp_run):
    _, sctp_watch, sctp_result = sctp_run
    _, tcp_watch, tcp_result = tcp_run
    assert sctp_watch.recovery_ns < tcp_watch.recovery_ns
    assert sctp_result.duration_ns < tcp_result.duration_ns


@pytest.mark.parametrize("rpi", ["sctp", "tcp"])
def test_same_seed_metrics_byte_identical(rpi):
    def snapshot():
        with MetricsCollector() as collector:
            world, _, _ = run_blackhole(rpi, seed=7)
        return json.dumps(collector.runs, sort_keys=True)

    first, second = snapshot(), snapshot()
    assert "faults.blackhole" in first, "scenario probes must be exported"
    assert first == second
