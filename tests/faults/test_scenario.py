"""FaultScenario timelines: validation, arming, windows, probes."""

import pytest

from repro.faults import (
    BernoulliLoss,
    Blackhole,
    Corrupt,
    FaultEvent,
    FaultScenario,
)
from repro.metrics import MetricsRegistry
from repro.network import DummynetPipe, Link, Packet
from repro.simkernel import Kernel


def pkt(i=0):
    return Packet(src="a", dst="b", proto="t", payload=i, wire_size=100)


def make_pipes(kernel, keys):
    sinks = {key: [] for key in keys}
    pipes = {
        key: DummynetPipe(kernel, key, sink=sinks[key].append) for key in keys
    }
    return pipes, sinks


# -- event / scenario validation -------------------------------------------
def test_event_validation():
    with pytest.raises(ValueError, match="negative"):
        FaultEvent(-1, None, "*", Blackhole())
    with pytest.raises(ValueError, match="empty"):
        FaultEvent(100, 100, "*", Blackhole())
    with pytest.raises(ValueError, match="link targets"):
        FaultEvent(0, None, "link:x", Corrupt())
    with pytest.raises(ValueError, match="name"):
        FaultScenario("", [])


def test_json_round_trip():
    scenario = FaultScenario(
        "mix",
        [
            FaultEvent(0, None, "h*p0", BernoulliLoss(0.1)),
            FaultEvent(5, 9, "link:l0", Blackhole()),
        ],
    )
    back = FaultScenario.from_json(scenario.to_json())
    assert back.to_dict() == scenario.to_dict()
    assert isinstance(back.events[0].impairment, BernoulliLoss)
    assert back.events[0].impairment.rate == 0.1


# -- arming and fnmatch targeting ------------------------------------------
def test_fnmatch_targets_path_zero_only():
    k = Kernel(seed=1)
    pipes, sinks = make_pipes(k, ["h0p0", "h0p1", "h1p0", "h1p1"])
    scenario = FaultScenario("s", [FaultEvent(0, None, "h*p0", Blackhole())])
    armed = scenario.arm(k, pipes)
    assert sorted(key for key, _ in armed.impairments) == ["h0p0", "h1p0"]
    for key in pipes:
        pipes[key](pkt())
    assert sinks["h0p0"] == [] and sinks["h1p0"] == []
    assert len(sinks["h0p1"]) == 1 and len(sinks["h1p1"]) == 1


def test_unmatched_target_raises():
    k = Kernel(seed=1)
    pipes, _ = make_pipes(k, ["h0p0"])
    scenario = FaultScenario("s", [FaultEvent(0, None, "nope*", Blackhole())])
    with pytest.raises(ValueError, match="matches no Dummynet pipe"):
        scenario.arm(k, pipes)
    bad_link = FaultScenario("s", [FaultEvent(0, None, "link:x", Blackhole())])
    with pytest.raises(ValueError, match="matches no link"):
        bad_link.arm(k, pipes, links={})


def test_armed_clones_leave_prototype_unbound():
    k = Kernel(seed=1)
    pipes, _ = make_pipes(k, ["h0p0", "h1p0"])
    proto = BernoulliLoss(0.5)
    scenario = FaultScenario("s", [FaultEvent(0, None, "*", proto)])
    armed = scenario.arm(k, pipes)
    assert not proto.bound
    imps = [imp for _, imp in armed.impairments]
    assert len(imps) == 2 and imps[0] is not imps[1]
    assert all(imp.bound for imp in imps)


# -- time windows ----------------------------------------------------------
def test_window_arms_and_disarms_on_schedule():
    k = Kernel(seed=1)
    pipes, sinks = make_pipes(k, ["p"])
    scenario = FaultScenario("s", [FaultEvent(100, 200, "p", Blackhole())])
    armed = scenario.arm(k, pipes)
    assert armed.active == 0, "window not open yet"
    for t in (50, 150, 250):
        k.call_at(t, pipes["p"], pkt(t))
    k.run()
    assert [p.payload for p in sinks["p"]] == [50, 250]
    assert armed.active == 0 and not pipes["p"].armed_impairments


def test_open_ended_window_stays_armed():
    k = Kernel(seed=1)
    pipes, sinks = make_pipes(k, ["p"])
    scenario = FaultScenario("s", [FaultEvent(0, None, "p", Blackhole())])
    armed = scenario.arm(k, pipes)
    assert armed.active == 1, "start <= now arms inline"
    k.call_at(10_000_000, pipes["p"], pkt())
    k.run()
    assert sinks["p"] == [] and armed.active == 1


def test_cancel_unarms_future_events():
    k = Kernel(seed=1)
    pipes, sinks = make_pipes(k, ["p"])
    scenario = FaultScenario("s", [FaultEvent(100, 200, "p", Blackhole())])
    armed = scenario.arm(k, pipes)
    armed.cancel()
    k.call_at(150, pipes["p"], pkt())
    k.run()
    assert len(sinks["p"]) == 1, "cancelled scenario must not fire"


def test_link_target_downs_link_for_window():
    k = Kernel(seed=1)
    delivered = []
    link = Link(k, "l0", bandwidth_bps=10**9, prop_delay_ns=0,
                sink=delivered.append)
    scenario = FaultScenario(
        "s", [FaultEvent(100, 200, "link:l0", Blackhole())]
    )
    scenario.arm(k, {}, links={"l0": link})
    for t in (50, 150, 250):
        k.call_at(t, link.send, pkt(t))
    k.run()
    assert [p.payload for p in delivered] == [50, 250]
    assert link.admin_down_drops == 1 and link.up


# -- determinism and metrics -----------------------------------------------
def test_same_seed_same_impairment_draws():
    def run(seed):
        k = Kernel(seed=seed)
        pipes, sinks = make_pipes(k, ["p"])
        scenario = FaultScenario(
            "s", [FaultEvent(0, None, "p", BernoulliLoss(0.3))]
        )
        scenario.arm(k, pipes)
        for i in range(300):
            pipes["p"](pkt(i))
        return [p.payload for p in sinks["p"]]

    assert run(5) == run(5)
    assert run(5) != run(6)


def test_probes_registered_under_faults_scope():
    k = Kernel(seed=1, metrics=MetricsRegistry(enabled=True))
    pipes, _ = make_pipes(k, ["h0p0"])
    scenario = FaultScenario(
        "demo", [FaultEvent(0, None, "h0p0", BernoulliLoss(1.0))]
    )
    scenario.arm(k, pipes)
    for i in range(5):
        pipes["h0p0"](pkt(i))
    snap = k.metrics.snapshot()
    assert snap["faults.demo.active"] == 1
    assert snap["faults.demo.impairments_armed"] == 1
    assert snap["faults.demo.e0.h0p0.packets_seen"] == 5
    assert snap["faults.demo.e0.h0p0.packets_dropped"] == 5
