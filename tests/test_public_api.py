"""The package's top-level public API surface."""

import repro


def test_version():
    assert repro.__version__ == "1.1.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_docstring_example_runs():
    async def app(comm):
        return await comm.allreduce(comm.rank)

    result = repro.run_app(app, n_procs=8, rpi="sctp", loss_rate=0.01, seed=0)
    assert result.results == [28] * 8


def test_world_config_round_trip():
    config = repro.WorldConfig(n_procs=3, rpi="tcp", loss_rate=0.005, seed=9)
    world = repro.World(config)
    assert world.config is config
    assert len(world.processes) == 3


def test_constants():
    assert repro.ANY_SOURCE == -1
    assert repro.ANY_TAG == -1
    assert repro.EAGER_LIMIT == 64 * 1024


def test_faults_exports_resolve():
    import repro.faults

    for name in repro.faults.__all__:
        assert hasattr(repro.faults, name), name


def test_world_config_accepts_scenario():
    from repro.faults import bernoulli_loss

    scenario = bernoulli_loss(0.01)
    config = repro.WorldConfig(n_procs=2, rpi="sctp", scenario=scenario)
    world = repro.World(config)
    assert world.armed_scenario is not None
    assert world.armed_scenario.scenario is scenario
