"""Determinism lint: rule detection, suppressions, report format."""

from repro.analyze.lint import RULES, lint_paths, lint_source, report_json


def rules_of(findings):
    return [f.rule for f in findings]


def test_wall_clock_flagged():
    src = "import time\ndef f():\n    return time.time()\n"
    findings = lint_source(src, "x.py")
    assert rules_of(findings) == ["AN101"]
    assert findings[0].line == 3


def test_wall_clock_variants():
    src = (
        "import time, datetime\n"
        "a = time.monotonic_ns()\n"
        "b = datetime.datetime.now()\n"
        "c = datetime.date.today()\n"
    )
    assert rules_of(lint_source(src, "x.py")) == ["AN101", "AN101", "AN101"]


def test_module_random_flagged_but_seeded_generators_allowed():
    bad = "import random\nx = random.random()\n"
    assert rules_of(lint_source(bad, "x.py")) == ["AN102"]
    good = (
        "import random\n"
        "import numpy as np\n"
        "r = random.Random(7)\n"
        "g = np.random.default_rng(7)\n"
    )
    assert lint_source(good, "x.py") == []


def test_from_random_import_flagged():
    src = "from random import randint\n"
    assert rules_of(lint_source(src, "x.py")) == ["AN102"]
    assert lint_source("from random import Random\n", "x.py") == []


def test_numpy_global_stream_flagged():
    src = "import numpy as np\nx = np.random.rand(3)\n"
    assert rules_of(lint_source(src, "x.py")) == ["AN102"]


def test_set_iteration_flagged():
    direct = "for x in {1, 2, 3}:\n    print(x)\n"
    assert rules_of(lint_source(direct, "x.py")) == ["AN103"]
    call = "for x in set(items):\n    print(x)\n"
    assert rules_of(lint_source(call, "x.py")) == ["AN103"]
    comp = "out = [y for y in {n.id for n in nodes}]\n"
    assert "AN103" in rules_of(lint_source(comp, "x.py"))


def test_set_local_variable_tracked_across_statements():
    # the pattern that bit association._on_sack: build a set, iterate later
    src = (
        "def f(records):\n"
        "    struck = {r.path for r in records}\n"
        "    for addr in struck:\n"
        "        touch(addr)\n"
    )
    assert rules_of(lint_source(src, "x.py")) == ["AN103"]


def test_sorted_set_iteration_is_clean():
    src = "for x in sorted({3, 1, 2}):\n    print(x)\n"
    assert lint_source(src, "x.py") == []


def test_id_ordering_flagged_only_in_ordering_contexts():
    bad = "order = sorted(objs, key=lambda o: id(o))\n"
    assert rules_of(lint_source(bad, "x.py")) == ["AN104"]
    cmp = "flag = id(a) < id(b)\n"
    assert rules_of(lint_source(cmp, "x.py")) == ["AN104", "AN104"]
    # distinct-count via id() has no ordering semantics: allowed
    ok = "n = len({id(a) for a in objs})\n"
    assert "AN104" not in rules_of(lint_source(ok, "x.py"))


def test_kernel_internals_flagged_outside_kernel_module():
    src = "def f(kernel):\n    kernel._heap.append(x)\n    kernel._now = 5\n"
    rules = rules_of(lint_source(src, "src/repro/faults/hack.py"))
    assert rules == ["AN105", "AN105"]
    # the kernel's own module is exempt
    assert lint_source(src, "src/repro/simkernel/kernel.py") == []
    # plain clock reads through the documented idiom stay legal
    ok = "def f(self):\n    return self.kernel._now\n"
    assert lint_source(ok, "src/repro/transport/x.py") == []


def test_line_suppression():
    src = "import time\nt = time.time()  # repro: allow[AN101]\n"
    assert lint_source(src, "x.py") == []
    # suppressing a different rule hides nothing — and the pointless
    # suppression is itself flagged (AN106)
    other = "import time\nt = time.time()  # repro: allow[AN103]\n"
    assert rules_of(lint_source(other, "x.py")) == ["AN101", "AN106"]


def test_file_suppression():
    src = (
        "# repro: allow-file[AN101]\n"
        "import time\n"
        "a = time.time()\n"
        "b = time.monotonic()\n"
    )
    assert lint_source(src, "x.py") == []


def test_unused_line_suppression_flagged():
    src = "x = 1  # repro: allow[AN101]\n"
    [f] = lint_source(src, "x.py")
    assert f.rule == "AN106" and f.line == 1
    assert "allow[AN101]" in f.message


def test_unused_file_suppression_flagged():
    src = "# repro: allow-file[AN102]\nx = 1\n"
    [f] = lint_source(src, "x.py")
    assert f.rule == "AN106" and "allow-file[AN102]" in f.message


def test_partially_used_suppression_flags_only_the_dead_rule():
    src = "import time\nt = time.time()  # repro: allow[AN101,AN104]\n"
    [f] = lint_source(src, "x.py")
    assert f.rule == "AN106" and "AN104" in f.message


def test_used_suppressions_are_not_flagged():
    src = (
        "# repro: allow-file[AN103]\n"
        "import time\n"
        "t = time.time()  # repro: allow[AN101]\n"
        "for x in {1, 2}:\n"
        "    print(x)\n"
    )
    assert lint_source(src, "x.py") == []


def test_flow_rule_suppressions_are_out_of_lint_scope():
    """allow[AN2xx/AN3xx] belongs to the flow analyzer; the lint must
    neither honour nor judge it."""
    src = "import time\nt = time.time()  # repro: allow[AN201]\n"
    assert rules_of(lint_source(src, "x.py")) == ["AN101"]


def test_an106_is_itself_suppressible():
    src = "x = 1  # repro: allow[AN101,AN106]\n"
    assert lint_source(src, "x.py") == []


def test_fix_listing_cli(capsys):
    import textwrap

    from repro.analyze.lint import main

    def run(tmp, args):
        return main([str(tmp), *args])

    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        target = Path(tmp) / "mod.py"
        target.write_text(
            textwrap.dedent(
                """\
                x = 1  # repro: allow[AN101]
                """
            )
        )
        # without --fix the stale comment fails the lint
        assert run(target, []) == 1
        capsys.readouterr()
        # with --fix it becomes a removal listing and the exit is clean
        assert run(target, ["--fix"]) == 0
        out = capsys.readouterr().out
        assert "fix:" in out and "allow[AN101]" in out


def test_findings_order_is_independent_of_input_order(tmp_path):
    """Satellite: (path, line, rule) report order regardless of walk or
    argument order — the analyzer must satisfy its own determinism bar."""
    import random as stdlib_random

    sources = {
        "b.py": "import time\nx = time.time()\ny = time.monotonic()\n",
        "a.py": "import random\nz = random.random()\n",
        "c.py": "for v in {1, 2}:\n    print(v)\n",
    }
    for name, text in sources.items():
        (tmp_path / name).write_text(text)
    files = [str(tmp_path / name) for name in sources]

    rng = stdlib_random.Random(7)
    baseline = lint_paths(files)
    keys = [(f.path, f.line, f.rule) for f in baseline]
    assert keys == sorted(keys)
    for _ in range(5):
        shuffled = files[:]
        rng.shuffle(shuffled)
        assert lint_paths(shuffled) == baseline
    # overlapping arguments (dir + file inside it) must not duplicate
    assert lint_paths([str(tmp_path), files[0]]) == baseline


def test_report_json_schema():
    import json

    src = "import time\nx = time.time()\n"
    doc = json.loads(report_json(lint_source(src, "x.py")))
    assert doc["tool"] == "repro.analyze.lint"
    assert set(doc["rules"]) == set(RULES)
    (finding,) = doc["findings"]
    assert finding["rule"] == "AN101"
    assert finding["path"] == "x.py"
    assert finding["line"] == 2


def test_repo_sources_are_clean():
    """The tree itself must stay lint-clean — the same gate CI runs."""
    assert lint_paths(["src/repro"]) == []


def test_nondeterministic_scheduler_is_caught():
    """Regression: a stream scheduler that iterates a set to pick the
    next stream ties transmission order to hash order — exactly the
    nondeterminism AN103 exists to catch.  The shipped schedulers use
    lists indexed by stream id and must stay clean."""
    planted = (
        "def choose(queues):\n"
        "    backlogged = {sid for sid, q in queues.items() if q}\n"
        "    for sid in backlogged:\n"
        "        return sid\n"
    )
    assert rules_of(lint_source(planted, "sched.py")) == ["AN103"]
    assert lint_paths(["src/repro/transport/sctp/sched.py"]) == []
