"""Interprocedural taint + fork-purity: planted leaks, traces, SARIF."""

import json

from repro.analyze.callgraph import Program
from repro.analyze.flow import (
    FLOW_RULES,
    analyze_program,
    analyze_tree,
    report_json,
    sarif_report,
)


def program(**sources):
    return Program.from_sources(
        {f"app.{name}": (f"src/app/{name}.py", text) for name, text in sources.items()}
    )


def rules_of(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# determinism taint (AN2xx)
# ---------------------------------------------------------------------------
def test_acceptance_wall_clock_laundered_through_two_helpers_into_packet():
    """ISSUE acceptance: a wall-clock value laundered through two helper
    calls into a packet field must be detected, with the full trace."""
    p = program(
        clock=(
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        ),
        wrap=(
            "from .clock import stamp\n"
            "def tag():\n"
            "    return stamp() * 1000\n"
        ),
        net=(
            "from .wrap import tag\n"
            "class Packet:\n"
            "    pass\n"
            "def send(pkt):\n"
            "    pkt.payload = tag()\n"
        ),
    )
    findings = analyze_program(p)
    assert rules_of(findings) == ["AN201"]
    [f] = findings
    assert f.path == "src/app/net.py"
    assert "time.time()" in f.source
    assert ".payload" in f.sink
    trace = "\n".join(f.trace)
    assert "source: time.time()" in trace and "clock.py" in trace
    assert "stamp" in trace and "tag" in trace  # both helpers appear
    assert "sink: store to .payload" in trace


def test_taint_through_call_argument_into_kernel_schedule():
    p = program(
        main=(
            "import time\n"
            "def jitter():\n"
            "    return time.monotonic()\n"
            "def schedule(kernel):\n"
            "    kernel.call_after(jitter(), print)\n"
        ),
    )
    findings = analyze_program(p)
    assert "AN201" in rules_of(findings)
    [f] = [x for x in findings if x.rule == "AN201"]
    assert "kernel scheduling argument" in f.sink


def test_taint_through_parameter_summary():
    """A helper that sinks its *parameter* taints all its callers' args."""
    p = program(
        main=(
            "import os\n"
            "def record(metric, value):\n"
            "    metric.observe(value)\n"
            "def run(metric):\n"
            "    record(metric, os.getpid())\n"
        ),
    )
    findings = analyze_program(p)
    assert rules_of(findings) == ["AN203"]
    assert "metrics value" in findings[0].sink


def test_env_read_through_ternary_reaches_digest():
    """The REPRO_FULL pattern: env read selects a string via a ternary,
    which flows two calls deep into a cache-digest argument."""
    p = program(
        scale=(
            "import os\n"
            "def full():\n"
            "    return os.environ.get('FULL', '') == '1'\n"
            "def label():\n"
            "    return 'full' if full() else 'smoke'\n"
        ),
        cache=(
            "from .scale import label\n"
            "def cell_digest(experiment, scale):\n"
            "    return (experiment, scale)\n"
            "def key(experiment):\n"
            "    return cell_digest(experiment, label())\n"
        ),
    )
    findings = analyze_program(p)
    assert "AN205" in rules_of(findings)


def test_untainted_flow_is_clean_and_seeded_rng_is_clean():
    p = program(
        main=(
            "import random\n"
            "def send(pkt, n):\n"
            "    r = random.Random(7).random()\n"
            "    pkt.payload = n + r\n"
        ),
    )
    assert analyze_program(p) == []


def test_wall_clock_not_reaching_a_sink_is_not_reported():
    """Flow analysis only fires on source->sink; a logged timestamp that
    stays out of the simulation is the per-line lint's business."""
    p = program(
        main=(
            "import time\n"
            "def log():\n"
            "    print(time.time())\n"
        ),
    )
    assert analyze_program(p) == []


def test_allow_comment_at_sink_line_suppresses():
    p = program(
        main=(
            "import time\n"
            "def send(pkt):\n"
            "    pkt.payload = time.time()  # repro: allow[AN201]\n"
        ),
    )
    assert analyze_program(p) == []


# ---------------------------------------------------------------------------
# fork purity (AN3xx)
# ---------------------------------------------------------------------------
FORK_PRELUDE = (
    "import multiprocessing\n"
    "def launch(conn):\n"
    "    p = multiprocessing.Process(target=_worker, args=(conn,))\n"
    "    p.start()\n"
)


def test_acceptance_shard_worker_global_mutation_detected_with_chain():
    """ISSUE acceptance: a shard worker mutating a module global through
    a helper must be detected, with the entry chain in the trace."""
    p = program(
        work=(
            FORK_PRELUDE
            + "_cache = {}\n"
            "def _worker(conn):\n"
            "    tally(conn)\n"
            "def tally(conn):\n"
            "    _cache['n'] = 1\n"
        ),
    )
    findings = analyze_program(p)
    assert rules_of(findings) == ["AN301"]
    [f] = findings
    assert f.source == "_cache"
    assert "_worker" in "\n".join(f.trace)  # the fork entry chain
    assert "tally" in "\n".join(f.trace)


def test_global_rebind_and_container_method_mutation_flagged():
    p = program(
        work=(
            FORK_PRELUDE
            + "_count = 0\n"
            "_items = []\n"
            "def _worker(conn):\n"
            "    global _count\n"
            "    _count = 1\n"
            "    _items.append(conn)\n"
        ),
    )
    assert rules_of(analyze_program(p)) == ["AN301", "AN301"]


def test_closure_captured_mutation_in_nested_worker_flagged():
    p = program(
        work=(
            FORK_PRELUDE
            + "def _worker(conn):\n"
            "    seen = []\n"
            "    def step():\n"
            "        seen.append(1)\n"
            "    step()\n"
            "    conn.send(seen)\n"
        ),
    )
    findings = analyze_program(p)
    assert "AN302" in rules_of(findings)
    [f] = [x for x in findings if x.rule == "AN302"]
    assert f.source == "seen"


def test_signal_handler_in_fork_reachable_code_flagged():
    p = program(
        work=(
            FORK_PRELUDE
            + "import signal\n"
            "def _worker(conn):\n"
            "    signal.signal(signal.SIGTERM, print)\n"
        ),
    )
    assert rules_of(analyze_program(p)) == ["AN303"]


def test_lambda_target_capture_flagged_as_unpicklable():
    p = program(
        work=(
            "import multiprocessing\n"
            "def launch(conn):\n"
            "    p = multiprocessing.Process(target=lambda: conn.send(1))\n"
            "    p.start()\n"
        ),
    )
    assert rules_of(analyze_program(p)) == ["AN304"]


def test_local_mutation_in_worker_is_clean():
    p = program(
        work=(
            FORK_PRELUDE
            + "def _worker(conn):\n"
            "    items = []\n"
            "    items.append(1)\n"
            "    conn.send(items)\n"
        ),
    )
    assert analyze_program(p) == []


def test_global_mutation_outside_fork_reachable_code_is_clean():
    """Purity is scoped to fork-reachable functions, not the whole tree."""
    p = program(
        work=(
            FORK_PRELUDE
            + "_memo = {}\n"
            "def _worker(conn):\n"
            "    conn.send(1)\n"
            "def parent_only():\n"
            "    _memo['x'] = 1\n"
        ),
    )
    assert analyze_program(p) == []


# ---------------------------------------------------------------------------
# the real tree, reports, CLI
# ---------------------------------------------------------------------------
def test_real_tree_findings_are_all_baselined():
    """Every finding over src/repro must be in the committed baseline —
    the exact gate CI runs via `python -m repro.analyze ci`."""
    from repro.analyze.baseline import apply_baseline, load_baseline

    findings = analyze_tree("src/repro")
    new, unused = apply_baseline(findings, load_baseline("ANALYZE_baseline.json"))
    assert new == []
    assert unused == []


def test_findings_are_deterministically_ordered():
    findings = analyze_tree("src/repro")
    keys = [(f.path, f.line, f.rule, f.source, f.sink) for f in findings]
    assert keys == sorted(keys)
    assert findings == analyze_tree("src/repro")


def test_report_json_schema():
    p = program(
        main=(
            "import time\n"
            "def send(pkt):\n"
            "    pkt.payload = time.time()\n"
        ),
    )
    doc = json.loads(report_json(analyze_program(p)))
    assert doc["tool"] == "repro.analyze.flow"
    assert set(doc["rules"]) == set(FLOW_RULES)
    [finding] = doc["findings"]
    assert finding["rule"] == "AN201" and finding["trace"]


def test_sarif_report_carries_code_flows():
    p = program(
        main=(
            "import time\n"
            "def send(pkt):\n"
            "    pkt.payload = time.time()\n"
        ),
    )
    findings = analyze_program(p)
    doc = json.loads(sarif_report(findings))
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro.analyze"
    [result] = run["results"]
    assert result["ruleId"] == "AN201"
    steps = result["codeFlows"][0]["threadFlows"][0]["locations"]
    assert len(steps) == len(findings[0].trace)


def test_cli_flow_and_ci_exit_codes(tmp_path, capsys):
    from repro.analyze.__main__ import main

    assert main(["flow", "src/repro", "--baseline", "ANALYZE_baseline.json"]) == 0
    sarif = tmp_path / "out.sarif"
    assert main(["ci", "--sarif", str(sarif)]) == 0
    capsys.readouterr()
    assert json.loads(sarif.read_text())["version"] == "2.1.0"
