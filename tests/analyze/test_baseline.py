"""Baseline lifecycle: fingerprints, suppression, stale-entry reporting."""

import json

import pytest

from repro.analyze.baseline import (
    BASELINE_VERSION,
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analyze.flow import FlowFinding


def finding(rule="AN201", line=10, source="time.time() (a.py)", sink="x"):
    return FlowFinding(
        rule=rule,
        path="src/app/a.py",
        line=line,
        function="app.a.f",
        source=source,
        sink=sink,
        message="m",
        trace=("source: ...", "sink: ..."),
    )


def test_fingerprint_is_line_insensitive_but_identity_sensitive():
    assert fingerprint(finding(line=10)) == fingerprint(finding(line=99))
    assert fingerprint(finding()) != fingerprint(finding(rule="AN202"))
    assert fingerprint(finding()) != fingerprint(finding(sink="y"))


def test_roundtrip_suppresses_known_and_reports_stale(tmp_path):
    path = tmp_path / "base.json"
    known = finding()
    write_baseline([known], str(path))
    base = load_baseline(str(path))

    # the recorded finding rides, even after drifting to another line
    new, unused = apply_baseline([finding(line=42)], base)
    assert new == [] and unused == []

    # an unrecorded finding is new; a stale entry is reported
    other = finding(rule="AN202")
    new, unused = apply_baseline([other], base)
    assert new == [other]
    [stale] = unused
    assert "AN201" in stale and "app.a.f" in stale


def test_missing_baseline_means_everything_is_new(tmp_path):
    base = load_baseline(str(tmp_path / "absent.json"))
    new, unused = apply_baseline([finding()], base)
    assert len(new) == 1 and unused == []


def test_version_mismatch_is_loud(tmp_path):
    path = tmp_path / "base.json"
    path.write_text(json.dumps({"version": BASELINE_VERSION + 1, "entries": []}))
    with pytest.raises(ValueError, match="version"):
        load_baseline(str(path))


def test_baseline_file_is_stable_and_deduped(tmp_path):
    path = tmp_path / "base.json"
    write_baseline([finding(line=10), finding(line=99)], str(path))
    doc = json.loads(path.read_text())
    assert len(doc["entries"]) == 1  # same fingerprint, one entry
    first = path.read_text()
    write_baseline([finding(line=99), finding(line=10)], str(path))
    assert path.read_text() == first  # order of input must not matter


def test_committed_baseline_entries_all_have_notes():
    """Every accepted finding must say *why* it is accepted."""
    base = load_baseline("ANALYZE_baseline.json")
    assert base, "committed baseline should not be empty"
    for entry in base.values():
        assert entry["note"].strip(), f"missing note: {entry['fingerprint']}"
