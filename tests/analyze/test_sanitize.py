"""Protocol-invariant sanitizers: gating, per-layer checks, zero-cost proof."""

from types import SimpleNamespace

import pytest

from repro.analyze.sanitize import (
    AssociationSanitizer,
    IDataSanitizer,
    InvariantViolation,
    KernelSanitizer,
    OptionBSanitizer,
    RPISanitizer,
    StreamOrderSanitizer,
    TCPConnectionSanitizer,
    kernel_sanitizer,
    idata_sanitizer,
    rpi_sanitizer,
    sanitized,
    sanitizers_enabled,
    sctp_sanitizer,
    stream_sanitizer,
    tcp_sanitizer,
)


# ---------------------------------------------------------------------------
# enablement gating: factories return None unless opted in
# ---------------------------------------------------------------------------
def test_factories_return_none_when_disabled():
    with sanitized(False):
        assert not sanitizers_enabled()
        assert idata_sanitizer() is None
        assert kernel_sanitizer(object()) is None
        assert tcp_sanitizer() is None
        assert sctp_sanitizer() is None
        assert stream_sanitizer() is None
        assert rpi_sanitizer() is None


def test_factories_return_checkers_when_enabled():
    with sanitized(True):
        assert sanitizers_enabled()
        assert isinstance(kernel_sanitizer(object()), KernelSanitizer)
        assert isinstance(tcp_sanitizer(), TCPConnectionSanitizer)
        assert isinstance(sctp_sanitizer(), AssociationSanitizer)
        assert isinstance(stream_sanitizer(), StreamOrderSanitizer)
        assert isinstance(rpi_sanitizer(), RPISanitizer)
        assert isinstance(idata_sanitizer(), IDataSanitizer)


def test_sanitized_context_restores_previous_state():
    with sanitized(True):
        with sanitized(False):
            assert not sanitizers_enabled()
        assert sanitizers_enabled()


# ---------------------------------------------------------------------------
# kernel layer
# ---------------------------------------------------------------------------
def fake_kernel(heap, now=0, live=None, cancelled=0):
    if live is None:
        live = len(heap)
    return SimpleNamespace(
        _heap=heap, _now=now, _live_events=live, _cancelled_in_heap=cancelled
    )


def timer(cancelled=False):
    return SimpleNamespace(cancelled=cancelled)


def test_kernel_time_travel_trips():
    san = KernelSanitizer(fake_kernel([], now=1_000))
    san.on_fire(1_000)  # equal time is legal (same-timestamp events)
    with pytest.raises(InvariantViolation, match="monotonicity"):
        san.on_fire(999)


def test_kernel_heap_property_audit():
    good = [(1, 0, timer()), (5, 1, timer()), (3, 2, timer())]
    KernelSanitizer(fake_kernel(good)).audit()  # valid binary min-heap
    broken = [(5, 0, timer()), (1, 1, timer())]  # parent key > child key
    with pytest.raises(InvariantViolation, match="heap integrity"):
        KernelSanitizer(fake_kernel(broken)).audit()


def test_kernel_counter_agreement_audit():
    heap = [(1, 0, timer()), (2, 1, timer(cancelled=True))]
    KernelSanitizer(fake_kernel(heap, live=1, cancelled=1)).audit()
    with pytest.raises(InvariantViolation, match="pending-events"):
        KernelSanitizer(fake_kernel(heap, live=2, cancelled=1)).audit()
    with pytest.raises(InvariantViolation, match="cancelled-in-heap"):
        KernelSanitizer(fake_kernel(heap, live=1, cancelled=0)).audit()


# ---------------------------------------------------------------------------
# TCP layer
# ---------------------------------------------------------------------------
def fake_conn(una=100, nxt=100, tail=100, fin_seq=None,
              cwnd=14_480, mss=1_448, ssthresh=1 << 30,
              fast_retransmits=0, timeouts=0, rcv_nxt=50):
    cc = SimpleNamespace(
        cwnd=cwnd, mss=mss, ssthresh=ssthresh,
        fast_retransmits=fast_retransmits, timeouts=timeouts,
    )
    return SimpleNamespace(
        snd_una=una, snd_nxt=nxt, _fin_seq=fin_seq, cc=cc,
        send_buffer=SimpleNamespace(tail_seq=tail),
        reassembly=SimpleNamespace(rcv_nxt=rcv_nxt),
        local_addr="10.0.0.1", local_port=1, remote_addr="10.0.0.2",
        remote_port=2,
    )


def test_tcp_cumulative_ack_retreat_trips():
    san = TCPConnectionSanitizer()
    san.on_ack_processed(fake_conn(una=100))
    san.on_ack_processed(fake_conn(una=100))  # duplicate is fine
    with pytest.raises(InvariantViolation, match="cumulative-ACK"):
        san.on_ack_processed(fake_conn(una=99))


def test_tcp_ack_beyond_sent_data_trips():
    with pytest.raises(InvariantViolation, match="send-window"):
        TCPConnectionSanitizer().on_ack_processed(fake_conn(una=200, nxt=150))


def test_tcp_snd_nxt_beyond_buffer_trips_unless_fin():
    with pytest.raises(InvariantViolation, match="send-window"):
        TCPConnectionSanitizer().on_ack_processed(
            fake_conn(una=100, nxt=101, tail=100)
        )
    # the FIN legitimately occupies one sequence number past the data
    TCPConnectionSanitizer().on_ack_processed(
        fake_conn(una=100, nxt=101, tail=100, fin_seq=100)
    )


def test_tcp_cwnd_and_ssthresh_bounds():
    with pytest.raises(InvariantViolation, match="cwnd lower bound"):
        TCPConnectionSanitizer().on_ack_processed(fake_conn(cwnd=100, mss=1_448))
    with pytest.raises(InvariantViolation, match="ssthresh lower bound"):
        TCPConnectionSanitizer().on_ack_processed(
            fake_conn(ssthresh=1_000, fast_retransmits=1)
        )
    # pre-loss "infinite" ssthresh is legal
    TCPConnectionSanitizer().on_ack_processed(fake_conn(ssthresh=1 << 30))


def test_tcp_rcv_nxt_retreat_trips():
    san = TCPConnectionSanitizer()
    san.on_delivery(fake_conn(rcv_nxt=500))
    with pytest.raises(InvariantViolation, match="rcv_nxt"):
        san.on_delivery(fake_conn(rcv_nxt=499))


def test_tcp_double_fin_trips():
    san = TCPConnectionSanitizer()
    san.on_fin_accepted(fake_conn())
    with pytest.raises(InvariantViolation, match="single-FIN"):
        san.on_fin_accepted(fake_conn())


# ---------------------------------------------------------------------------
# SCTP layer
# ---------------------------------------------------------------------------
def record(tsn, nbytes=1_000, path="10.0.0.2", gap_acked=False):
    return SimpleNamespace(
        chunk=SimpleNamespace(tsn=tsn, payload=SimpleNamespace(nbytes=nbytes)),
        path_addr=path, gap_acked=gap_acked,
    )


def fake_assoc(cum=10, records=(), outstanding_bytes=None, paths=None,
               rcv_cum=0, above_cum=()):
    outstanding = {r.chunk.tsn: r for r in records}
    if outstanding_bytes is None:
        outstanding_bytes = sum(
            r.chunk.payload.nbytes for r in records if not r.gap_acked
        )
    if paths is None:
        by_path = {}
        for r in records:
            if not r.gap_acked:
                by_path[r.path_addr] = (
                    by_path.get(r.path_addr, 0) + r.chunk.payload.nbytes
                )
        paths = {
            addr: SimpleNamespace(
                outstanding_bytes=nbytes, cwnd=10_000, mtu_payload=1_452
            )
            for addr, nbytes in by_path.items()
        }
    return SimpleNamespace(
        cum_tsn_acked=cum, outstanding=outstanding,
        outstanding_bytes=outstanding_bytes, paths=paths,
        rcv_cum_tsn=rcv_cum, _received_above_cum=set(above_cum),
    )


def test_sctp_clean_sack_state_passes():
    AssociationSanitizer().on_sack_processed(
        fake_assoc(cum=10, records=[record(11), record(12, gap_acked=True)])
    )


def test_sctp_cum_tsn_retreat_trips():
    san = AssociationSanitizer()
    san.on_sack_processed(fake_assoc(cum=10))
    with pytest.raises(InvariantViolation, match="cumulative-TSN"):
        san.on_sack_processed(fake_assoc(cum=9))


def test_sctp_outstanding_order_and_stale_tsn_trip():
    with pytest.raises(InvariantViolation, match="outstanding TSN order"):
        AssociationSanitizer().on_sack_processed(
            fake_assoc(cum=10, records=[record(12), record(11)])
        )
    with pytest.raises(InvariantViolation, match="outstanding TSN order"):
        # TSN <= cum should have been retired by the cumulative ACK
        AssociationSanitizer().on_sack_processed(
            fake_assoc(cum=10, records=[record(10)])
        )


def test_sctp_outstanding_bytes_mismatch_trips():
    with pytest.raises(InvariantViolation, match="outstanding-bytes"):
        AssociationSanitizer().on_sack_processed(
            fake_assoc(cum=10, records=[record(11)], outstanding_bytes=999)
        )


def test_sctp_per_path_accounting_and_cwnd_floor():
    assoc = fake_assoc(cum=10, records=[record(11, path="10.0.0.2")])
    assoc.paths["10.0.0.2"].outstanding_bytes = 5
    with pytest.raises(InvariantViolation, match="per-path outstanding"):
        AssociationSanitizer().on_sack_processed(assoc)
    assoc2 = fake_assoc(cum=10, records=[record(11, path="10.0.0.2")])
    assoc2.paths["10.0.0.2"].cwnd = 100  # below one PMTU
    with pytest.raises(InvariantViolation, match="cwnd lower bound"):
        AssociationSanitizer().on_sack_processed(assoc2)


def test_sctp_receiver_gap_set_consistency():
    san = AssociationSanitizer()
    san.on_data_received(fake_assoc(rcv_cum=5, above_cum=(7, 9)))
    with pytest.raises(InvariantViolation, match="receiver cum-TSN"):
        san.on_data_received(fake_assoc(rcv_cum=4))
    with pytest.raises(InvariantViolation, match="gap-set"):
        AssociationSanitizer().on_data_received(
            fake_assoc(rcv_cum=5, above_cum=(5,))
        )


def test_sctp_e3_e4_gap_acked_retransmit_trips():
    san = AssociationSanitizer()
    san.on_retransmit([record(11)], "marked")  # not gap-acked: fine
    with pytest.raises(InvariantViolation, match="E3/E4"):
        san.on_retransmit([record(11, gap_acked=True)], "marked")


def test_stream_ssn_order():
    msg = lambda sid, ssn, unordered=False: SimpleNamespace(  # noqa: E731
        sid=sid, ssn=ssn, unordered=unordered
    )
    san = StreamOrderSanitizer()
    san.on_deliver([msg(0, 0), msg(0, 1), msg(3, 0)])
    san.on_deliver([msg(0, 2), msg(1, 7, unordered=True)])  # unordered exempt
    with pytest.raises(InvariantViolation, match="SSN order"):
        san.on_deliver([msg(0, 4)])  # expected SSN 3


def test_stream_ssn_sanitizer_skips_idata_messages():
    """I-DATA messages always carry ssn=0; only the MID rules apply."""
    san = StreamOrderSanitizer()
    idata = lambda mid: SimpleNamespace(  # noqa: E731
        sid=0, ssn=0, unordered=False, mid=mid
    )
    san.on_deliver([idata(0), idata(1), idata(2)])  # ssn 0 repeats: exempt


def _idchunk(tsn, is_idata=True):
    return SimpleNamespace(tsn=tsn, is_idata=is_idata)


def test_idata_mode_exclusivity():
    san = IDataSanitizer()
    san.on_chunk(_idchunk(1))
    san.on_chunk(_idchunk(2))
    with pytest.raises(InvariantViolation, match="exclusivity"):
        san.on_chunk(_idchunk(3, is_idata=False))
    san = IDataSanitizer()
    san.on_chunk(_idchunk(1, is_idata=False))
    with pytest.raises(InvariantViolation, match="exclusivity"):
        san.on_chunk(_idchunk(2, is_idata=True))


def test_idata_fsn_contiguity():
    frag = lambda begin=False, end=False: SimpleNamespace(  # noqa: E731
        begin=begin, end=end
    )
    san = IDataSanitizer()
    san.on_assembled(0, 0, {0: frag(begin=True), 1: frag(end=True)}, 1)
    with pytest.raises(InvariantViolation, match="FSN contiguity"):
        san.on_assembled(0, 1, {0: frag(begin=True), 2: frag(end=True)}, 2)
    with pytest.raises(InvariantViolation, match="B bit"):
        san.on_assembled(0, 2, {0: frag(), 1: frag(end=True)}, 1)
    with pytest.raises(InvariantViolation, match="E bit"):
        san.on_assembled(0, 3, {0: frag(begin=True), 1: frag()}, 1)


def test_idata_per_stream_mid_order():
    msg = lambda sid, mid, unordered=False: SimpleNamespace(  # noqa: E731
        sid=sid, mid=mid, unordered=unordered
    )
    san = IDataSanitizer()
    # the first delivery anchors the expectation (wraparound seeding)
    san.on_deliver([msg(0, 0xFFFFFFFF)])
    san.on_deliver([msg(0, 0), msg(1, 7)])  # wraps; stream 1 anchors at 7
    san.on_deliver([msg(0, 1), msg(1, 8, unordered=True)])  # unordered exempt
    with pytest.raises(InvariantViolation, match="MID order"):
        san.on_deliver([msg(0, 3)])  # expected MID 2


# ---------------------------------------------------------------------------
# RPI layer
# ---------------------------------------------------------------------------
def test_rpi_state_legality():
    req = SimpleNamespace(state="rndv_wait_ack")
    RPISanitizer().expect_state(req, "rndv_wait_ack", "LONG_ACK")
    with pytest.raises(InvariantViolation, match="state legality"):
        RPISanitizer().expect_state(req, "recv_body", "body piece")


def test_option_b_non_interleaving():
    san = OptionBSanitizer()
    a, b = object(), object()
    key = (1, 0)
    san.on_piece_sent(key, a, done=False)
    san.on_piece_sent(key, a, done=True)     # same unit finishes: fine
    san.on_piece_sent(key, b, done=False)    # next unit starts: fine
    san.on_piece_sent((1, 1), a, done=False)  # different stream: fine
    with pytest.raises(InvariantViolation, match="Option B"):
        san.on_piece_sent(key, a, done=False)  # b still mid-flight on key


# ---------------------------------------------------------------------------
# zero-cost property: enabling sanitizers must not change virtual time
# ---------------------------------------------------------------------------
def run_fig8_cell_digest():
    from repro.analyze.perturb import digest_payload, filter_schedule_sensitive
    from repro.bench.harness import run_experiment_cell
    from repro.metrics import MetricsCollector

    with MetricsCollector() as collector:
        rows = [row.to_jsonable() for row in run_experiment_cell("fig8", "1024")]
    runs = [
        {"label": run["label"], "metrics": filter_schedule_sensitive(run["metrics"])}
        for run in collector.runs
    ]
    return digest_payload({"rows": rows, "runs": runs})


def test_sanitizers_do_not_change_fig8_results():
    """ISSUE acceptance: sanitizers-on vs -off is bit-identical (fig8 cell)."""
    with sanitized(False):
        plain = run_fig8_cell_digest()
    with sanitized(True):
        checked = run_fig8_cell_digest()
    assert plain == checked


def test_full_stacks_run_clean_under_sanitizers():
    """A lossy end-to-end SCTP exchange trips nothing with checks armed."""
    from repro.util.blobs import RealBlob

    from ..conftest import make_cluster, sctp_pair
    from ..transport.test_sctp_transfer import pump_messages

    with sanitized(True):
        kernel, cluster = make_cluster(n_hosts=2, n_paths=2, loss_rate=0.05, seed=8)
        s0, s1, aid = sctp_pair(kernel, cluster)
        for _ in range(10):
            s0.sendmsg(aid, 0, RealBlob(b"s" * 4_000))
        msgs = pump_messages(kernel, s1, 10, limit_s=300)
    assert len(msgs) == 10
