"""Call-graph construction: resolution, fork sites, reachability."""

from repro.analyze.callgraph import CallGraph, Program


def program(**sources):
    """Assemble an in-memory program: ``name="source"`` per module."""
    return Program.from_sources(
        {f"app.{name}": (f"src/app/{name}.py", text) for name, text in sources.items()}
    )


def edge_pairs(graph):
    return {
        (e.caller, e.callee) for edges in graph.edges.values() for e in edges
    }


def test_direct_and_imported_calls_resolve():
    p = program(
        util="def helper(x):\n    return x\n",
        main=(
            "from .util import helper\n"
            "def run():\n"
            "    return helper(1)\n"
        ),
    )
    graph = CallGraph.build(p)
    assert ("app.main.run", "app.util.helper") in edge_pairs(graph)


def test_aliased_module_import_resolves():
    p = program(
        util="def helper(x):\n    return x\n",
        main=(
            "from app import util as u\n"
            "def run():\n"
            "    return u.helper(1)\n"
        ),
    )
    graph = CallGraph.build(p)
    assert ("app.main.run", "app.util.helper") in edge_pairs(graph)


def test_self_method_resolves_through_base_class():
    p = program(
        base="class Base:\n    def step(self):\n        return 1\n",
        main=(
            "from .base import Base\n"
            "class Child(Base):\n"
            "    def run(self):\n"
            "        return self.step()\n"
        ),
    )
    graph = CallGraph.build(p)
    assert ("app.main.Child.run", "app.base.Base.step") in edge_pairs(graph)


def test_external_module_attribute_is_not_by_name_matched():
    """``time.sleep`` must not resolve to an in-program ``sleep`` method."""
    p = program(
        kern="class Kernel:\n    def sleep(self, delay):\n        return delay\n",
        main=(
            "import time\n"
            "def wait():\n"
            "    time.sleep(0.1)\n"
        ),
    )
    graph = CallGraph.build(p)
    assert ("app.main.wait", "app.kern.Kernel.sleep") not in edge_pairs(graph)


def test_unknown_receiver_matches_methods_by_name():
    p = program(
        kern="class Kernel:\n    def advance(self, n):\n        return n\n",
        main="def run(k):\n    return k.advance(3)\n",
    )
    graph = CallGraph.build(p)
    [edge] = [
        e for e in graph.edges["app.main.run"] if e.callee.endswith("advance")
    ]
    assert edge.by_name


def test_fork_site_with_local_target_function():
    p = program(
        work=(
            "import multiprocessing\n"
            "def _worker(conn):\n"
            "    conn.send(1)\n"
            "def launch(ctx, conn):\n"
            "    p = ctx.Process(target=_worker, args=(conn,))\n"
            "    p.start()\n"
        ),
    )
    graph = CallGraph.build(p)
    [site] = graph.fork_sites
    assert site.target == "app.work._worker"
    assert site.caller == "app.work.launch"


def test_reachability_descends_nested_defs_and_reports_chain():
    p = program(
        work=(
            "def leaf():\n"
            "    return 1\n"
            "def entry():\n"
            "    def inner():\n"
            "        return leaf()\n"
            "    return inner()\n"
        ),
    )
    graph = CallGraph.build(p)
    parents = graph.reachable_from(["app.work.entry"])
    assert "app.work.leaf" in parents
    chain = graph.chain(parents, "app.work.leaf")
    assert chain[0] == "app.work.entry" and chain[-1] == "app.work.leaf"


def test_real_tree_loads_and_finds_the_fork_boundaries():
    p = Program.load("src/repro")
    graph = CallGraph.build(p)
    targets = {s.target for s in graph.fork_sites}
    assert "repro.simkernel.pdes._worker_main" in targets
    assert "repro.supervise.executor._child_main" in targets
