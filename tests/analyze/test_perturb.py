"""Schedule-perturbation race detector: masks, digests, planted races."""

import pytest

from repro.analyze.perturb import (
    TIEBREAK_FIFO,
    TIEBREAK_LIFO,
    PerturbResult,
    digest_payload,
    filter_schedule_sensitive,
    parse_mode,
    perturb_run,
    shuffle_mask,
    tiebreak,
)
from repro.simkernel import Kernel
from repro.simkernel import kernel as kernel_mod


# ---------------------------------------------------------------------------
# mask plumbing
# ---------------------------------------------------------------------------
def test_parse_mode():
    assert parse_mode("fifo") == ("fifo", TIEBREAK_FIFO)
    assert parse_mode("lifo") == ("lifo", TIEBREAK_LIFO)
    name, mask = parse_mode("shuffle:7")
    assert name == "shuffle:7" and mask == shuffle_mask(7)
    with pytest.raises(ValueError):
        parse_mode("coinflip")


def test_shuffle_mask_is_deterministic_and_never_fifo():
    assert shuffle_mask(7) == shuffle_mask(7)
    assert shuffle_mask(7) != shuffle_mask(8)
    for seed in range(50):
        assert 0 < shuffle_mask(seed) <= TIEBREAK_LIFO


def test_tiebreak_context_sets_and_restores_default():
    assert kernel_mod.DEFAULT_TIEBREAK_MASK == TIEBREAK_FIFO
    with tiebreak(TIEBREAK_LIFO):
        assert kernel_mod.DEFAULT_TIEBREAK_MASK == TIEBREAK_LIFO
        assert Kernel(seed=1)._seq_mask == TIEBREAK_LIFO
    assert kernel_mod.DEFAULT_TIEBREAK_MASK == TIEBREAK_FIFO
    # an explicit constructor argument always wins over the ambient default
    with tiebreak(TIEBREAK_LIFO):
        assert Kernel(seed=1, tiebreak_mask=0)._seq_mask == 0


def same_time_order(mask):
    """Fire five events at one timestamp; report the order they ran in."""
    kernel = Kernel(seed=1, tiebreak_mask=mask)
    order = []
    for i in range(5):
        kernel.call_at(1_000, order.append, i)
    kernel.run()
    return order


def test_mask_reverses_only_same_time_ties():
    assert same_time_order(TIEBREAK_FIFO) == [0, 1, 2, 3, 4]
    assert same_time_order(TIEBREAK_LIFO) == [4, 3, 2, 1, 0]
    # events at distinct times are untouched by any mask
    kernel = Kernel(seed=1, tiebreak_mask=TIEBREAK_LIFO)
    order = []
    for i in range(5):
        kernel.call_at(1_000 * (i + 1), order.append, i)
    kernel.run()
    assert order == [0, 1, 2, 3, 4]


# ---------------------------------------------------------------------------
# digests
# ---------------------------------------------------------------------------
def test_digest_is_key_order_invariant():
    assert digest_payload({"a": 1, "b": 2}) == digest_payload({"b": 2, "a": 1})
    assert digest_payload({"a": 1}) != digest_payload({"a": 2})


def test_filter_schedule_sensitive():
    snapshot = {
        "kernel.timer_heap_depth.p99": 12,
        "kernel.heap_compactions": 3,
        "kernel.now_ns": 42,
        "tcp.segments_sent": 9,
        # occupancy histograms sample at enqueue instants: same-timestamp
        # enqueue order shows through, so they are schedule-sensitive
        "net.link.h0p0->sw0.queue_occupancy_bytes/le_1500": 7,
        "net.link.h0p0->sw0.queue_occupancy_bytes/sum": 9000,
        "net.link.h0p0->sw0.tx_bytes": 123,
    }
    kept = filter_schedule_sensitive(snapshot)
    assert kept == {
        "kernel.now_ns": 42,
        "tcp.segments_sent": 9,
        "net.link.h0p0->sw0.tx_bytes": 123,
    }


def test_filter_handles_nested_keys_matching_infixes():
    """Satellite edge case: the occupancy infix must match at any depth
    of the metric name, not just the shapes the smoke worlds emit."""
    snapshot = {
        # deeply nested link under pod/core tiers, histogram bucket
        "net.pod1.core0.link.sw3->sw9.queue_occupancy_bytes/le_9000": 4,
        # ... and the aggregate fields of the same histogram
        "net.pod1.core0.link.sw3->sw9.queue_occupancy_bytes/count": 11,
        # an infix-free cousin on the same link must survive
        "net.pod1.core0.link.sw3->sw9.tx_bytes": 77,
        # the infix as a *suffix-less* fragment inside a key still matches
        "x.queue_occupancy_bytes/sum.shadow": 1,
    }
    kept = filter_schedule_sensitive(snapshot)
    assert kept == {"net.pod1.core0.link.sw3->sw9.tx_bytes": 77}


def test_filter_and_digest_of_empty_snapshot():
    """Satellite edge case: empty digest sets must behave, not crash."""
    assert filter_schedule_sensitive({}) == {}
    # an all-filtered snapshot digests like an empty one...
    only_sensitive = {"kernel.timer_heap_depth.p99": 5}
    assert digest_payload(filter_schedule_sensitive(only_sensitive)) == (
        digest_payload({})
    )
    # ...and a result with no perturbed modes is vacuously deterministic
    res = PerturbResult(label="empty", digests={"fifo": digest_payload({})})
    assert res.deterministic and res.divergent_modes == []


def test_filter_must_not_mask_a_planted_schedule_sensitive_leak():
    """Satellite edge case: a racy value smuggled into a *non*-filtered
    metric name must still trip the detector — the filter only exempts
    the documented depth/occupancy observability metrics."""

    def leaky_scenario():
        kernel = Kernel(seed=1)
        order = []
        for i in range(4):
            kernel.call_at(1_000, order.append, i)
        kernel.run()
        # the leak: tie-break order laundered into an innocent-looking key
        return {"tcp.first_segment_owner": order[0]}

    res = perturb_run(leaky_scenario, modes=("lifo", "shuffle:3"), label="leak")
    assert not res.deterministic
    assert "lifo" in res.divergent_modes


def test_perturb_result_reporting():
    res = PerturbResult(label="x", digests={"fifo": "aa", "lifo": "bb"})
    assert not res.deterministic
    assert res.divergent_modes == ["lifo"]
    assert "RACE" in res.report()
    doc = res.to_jsonable()
    assert doc["deterministic"] is False and doc["label"] == "x"
    ok = PerturbResult(label="y", digests={"fifo": "aa", "lifo": "aa"})
    assert ok.deterministic and "OK" in ok.report()


# ---------------------------------------------------------------------------
# the detector itself
# ---------------------------------------------------------------------------
def racy_scenario():
    """Result depends on same-timestamp ordering: a planted race."""
    kernel = Kernel(seed=1)  # picks up the ambient tie-break default
    order = []
    for i in range(4):
        kernel.call_at(1_000, order.append, i)
    kernel.run()
    return {"first_winner": order[0], "order": order}


def clean_scenario():
    """Same events, but the result is order-insensitive."""
    return {"order": sorted(racy_scenario()["order"])}


def test_perturb_flags_planted_same_time_ordering_dependency():
    """ISSUE acceptance: a planted tie-order dependency must be flagged."""
    res = perturb_run(racy_scenario, modes=("lifo", "shuffle:3"), label="planted")
    assert not res.deterministic
    assert "lifo" in res.divergent_modes


def test_perturb_passes_order_insensitive_scenario():
    res = perturb_run(clean_scenario, modes=("lifo", "shuffle:3"), label="clean")
    assert res.deterministic
    assert res.divergent_modes == []


def test_perturb_restores_fifo_default_after_run():
    perturb_run(clean_scenario, modes=("lifo",))
    assert kernel_mod.DEFAULT_TIEBREAK_MASK == TIEBREAK_FIFO


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_rejects_bad_specs(capsys):
    from repro.analyze.perturb import main

    with pytest.raises(SystemExit):
        main(["fig8"])  # missing :CELL
    with pytest.raises(ValueError):
        main(["fig8:1024", "--modes", "coinflip"])
