"""Future/Task semantics."""

import pytest

from repro.simkernel import CancelledError, Future, Kernel
from repro.simkernel.futures import InvalidStateError


def test_future_result_roundtrip():
    f = Future()
    assert not f.done()
    f.set_result(42)
    assert f.done() and f.result() == 42 and f.exception() is None


def test_future_exception():
    f = Future()
    f.set_exception(RuntimeError("x"))
    assert f.done()
    with pytest.raises(RuntimeError):
        f.result()
    assert isinstance(f.exception(), RuntimeError)


def test_double_completion_rejected():
    f = Future()
    f.set_result(1)
    with pytest.raises(InvalidStateError):
        f.set_result(2)
    with pytest.raises(InvalidStateError):
        f.set_exception(ValueError())


def test_result_before_done_rejected():
    with pytest.raises(InvalidStateError):
        Future().result()


def test_cancel():
    f = Future()
    assert f.cancel()
    assert f.cancelled()
    assert not f.cancel()  # second cancel is a no-op
    with pytest.raises(CancelledError):
        f.result()


def test_done_callback_immediate_and_deferred():
    seen = []
    f = Future()
    f.add_done_callback(lambda fut: seen.append("deferred"))
    f.set_result(None)
    f.add_done_callback(lambda fut: seen.append("immediate"))
    assert seen == ["deferred", "immediate"]


def test_task_returns_coroutine_value():
    k = Kernel()

    async def compute():
        await k.sleep(5)
        return "done"

    task = k.spawn(compute())
    k.run()
    assert task.result() == "done"


def test_task_propagates_exception():
    k = Kernel()

    async def fail():
        await k.sleep(1)
        raise KeyError("missing")

    task = k.spawn(fail())
    k.run()
    with pytest.raises(KeyError):
        task.result()


def test_task_awaits_chain():
    k = Kernel()

    async def inner():
        await k.sleep(3)
        return 7

    async def outer():
        value = await k.spawn(inner())
        return value * 2

    task = k.spawn(outer())
    k.run()
    assert task.result() == 14


def test_task_awaiting_non_awaitable_fails_task():
    k = Kernel()

    async def bad():
        await object()  # type: ignore[misc]

    task = k.spawn(bad())
    k.run()
    assert isinstance(task.exception(), TypeError)


def test_task_yielding_non_future_is_error():
    import types

    k = Kernel()

    @types.coroutine
    def alien():
        yield "not-a-future"

    async def bad():
        await alien()

    with pytest.raises(TypeError, match="only simkernel Futures"):
        k.spawn(bad())


def test_task_cancel_interrupts_coroutine():
    k = Kernel()
    witness = []

    async def app():
        try:
            await k.sleep(1000)
        except CancelledError:
            witness.append("cancelled")
            raise

    task = k.spawn(app())
    k.call_after(10, task.cancel)
    k.run()
    assert witness == ["cancelled"]
    assert task.cancelled()


def test_task_can_catch_cancellation_and_finish():
    k = Kernel()

    async def stubborn():
        try:
            await k.sleep(1000)
        except CancelledError:
            return "survived"

    task = k.spawn(stubborn())
    k.call_after(10, task.cancel)
    k.run()
    assert task.result() == "survived"


def test_await_completed_future_resumes_synchronously():
    k = Kernel()
    pre = Future()
    pre.set_result("ready")

    async def app():
        return await pre

    task = k.spawn(app())
    # no kernel.run() needed: awaiting a done future never suspends
    assert task.result() == "ready"
