"""Kernel progress watchdog: stall, event-budget, and wall limits.

The watchdog is the layer that catches *pure-Python* livelocks — a
spinning event loop still heartbeats, so the process supervisor in
:mod:`repro.supervise` cannot see them (and, conversely, cannot be
replaced by this: a SIGSTOP'd process never reaches these checks).
"""

import pytest

from repro.simkernel import Kernel, WatchdogExpired


def _spinner(kernel):
    """Plant a zero-delay self-rescheduling callback (a livelock)."""

    def spin():
        kernel.post_after(0, spin)

    kernel.post_after(0, spin)
    return spin


def test_stall_detection_names_the_hot_callback():
    kernel = Kernel(seed=1)
    _spinner(kernel)
    kernel.arm_watchdog(max_stall_events=500)
    with pytest.raises(WatchdogExpired) as err:
        kernel.run()
    message = str(err.value)
    assert "stalled" in message and "t=0ns" in message
    assert "spin" in message  # hot heap label points at the livelock


def test_event_budget():
    kernel = Kernel(seed=1)

    def tick():
        kernel.post_after(10, tick)

    kernel.post_after(0, tick)
    kernel.arm_watchdog(max_events=200)
    with pytest.raises(WatchdogExpired, match="event budget"):
        kernel.run()
    assert kernel.events_processed == 200  # accounting survives the raise


def test_wall_budget():
    kernel = Kernel(seed=1)

    def tick():
        kernel.post_after(10, tick)

    kernel.post_after(0, tick)
    kernel.arm_watchdog(max_wall_s=0.1, check_every=64)
    with pytest.raises(WatchdogExpired, match="wall-clock budget"):
        kernel.run()


def test_advancing_time_resets_the_stall_counter():
    """Bursts of same-timestamp events (barriers) must not trip a stall
    watchdog as long as virtual time keeps advancing between bursts."""
    kernel = Kernel(seed=1)
    fired = 0

    def burst():
        nonlocal fired
        fired += 1

    for t in range(20):
        for _ in range(50):  # 50 events per timestamp, well under the limit
            kernel.post_at(t * 100, burst)
    kernel.arm_watchdog(max_stall_events=200)
    kernel.run()
    assert fired == 1000


def test_watchdog_fires_in_run_until_too():
    from repro.simkernel import Future

    kernel = Kernel(seed=1)
    _spinner(kernel)
    kernel.arm_watchdog(max_stall_events=500)
    never = Future(name="never")
    with pytest.raises(WatchdogExpired):
        kernel.run_until(never)

    kernel2 = Kernel(seed=1)
    _spinner(kernel2)
    kernel2.arm_watchdog(max_stall_events=500)
    never2 = Future(name="never2")
    with pytest.raises(WatchdogExpired):
        kernel2.run_until(never2, limit=10_000_000)


def test_disarm_and_validation():
    kernel = Kernel(seed=1)
    kernel.arm_watchdog(max_events=5)
    kernel.disarm_watchdog()
    for i in range(20):
        kernel.post_at(i, lambda: None)
    assert kernel.run() == 20  # no expiry once disarmed
    with pytest.raises(ValueError):
        kernel.arm_watchdog()  # at least one limit required
    with pytest.raises(ValueError):
        kernel.arm_watchdog(max_events=-1)
    with pytest.raises(ValueError):
        kernel.arm_watchdog(max_events=10, check_every=0)


def test_unarmed_kernel_is_unaffected():
    kernel = Kernel(seed=1)
    fired = []
    for i in range(5):
        kernel.post_at(i * 10, fired.append, i)
    kernel.run()
    assert fired == [0, 1, 2, 3, 4]


def test_env_spec_parsing():
    from repro.simkernel.kernel import _watchdog_env
    import os

    old = os.environ.get("REPRO_WATCHDOG")
    try:
        os.environ["REPRO_WATCHDOG"] = "wall=30,events=1e6,stall=100000"
        limits = _watchdog_env()
        assert limits == {
            "wall": 30.0, "events": 1_000_000, "stall": 100_000, "every": 1024
        }
        os.environ["REPRO_WATCHDOG"] = "bogus=1"
        with pytest.raises(ValueError):
            _watchdog_env()
        os.environ["REPRO_WATCHDOG"] = "every=10"
        with pytest.raises(ValueError):  # a period alone limits nothing
            _watchdog_env()
        os.environ["REPRO_WATCHDOG"] = ""
        assert _watchdog_env() is None
    finally:
        if old is None:
            os.environ.pop("REPRO_WATCHDOG", None)
        else:
            os.environ["REPRO_WATCHDOG"] = old
