"""Conservative parallel DES: shard planning and serial-vs-sharded
bit-identity on a flat (fig8-style) world and a multi-switch pod world."""

import json

import pytest

from repro.core.world import WorldConfig
from repro.network import ClusterConfig, build_cluster
from repro.simkernel import SECOND, Kernel
from repro.simkernel.pdes import PDESResult, ShardPlan, run_sharded
from repro.workloads.halo import make_halo
from repro.workloads.mpbench import make_pingpong


# ---------------------------------------------------------------------------
# ShardPlan: the static partition
# ---------------------------------------------------------------------------
def test_plan_rejects_bad_shard_counts():
    with pytest.raises(ValueError):
        ShardPlan(n_procs=4, n_pods=1, n_shards=0)
    with pytest.raises(ValueError):
        ShardPlan(n_procs=4, n_pods=1, n_shards=5)


def test_ranks_partition_contiguously():
    plan = ShardPlan(n_procs=8, n_pods=4, n_shards=4)
    shards = [plan.shard_of_rank(r) for r in range(8)]
    assert shards == sorted(shards)  # contiguous
    all_ranks = [r for s in range(4) for r in plan.ranks_of(s)]
    assert all_ranks == list(range(8))  # a partition, in order
    assert {len(plan.ranks_of(s)) for s in range(4)} == {2}  # balanced


def test_link_shards_matches_built_topology():
    cfg = ClusterConfig(n_hosts=8, n_paths=2, n_pods=4)
    cluster = build_cluster(Kernel(seed=1), cfg)
    plan = ShardPlan(n_procs=8, n_pods=4, n_shards=4)
    owners = plan.link_shards(cfg.n_paths, cfg.switch_name)
    assert set(owners) == set(cluster.links)


def test_pod_aligned_sharding_cuts_only_trunks():
    cfg = ClusterConfig(n_hosts=8, n_pods=4)
    plan = ShardPlan(n_procs=8, n_pods=4, n_shards=4)
    owners = plan.link_shards(cfg.n_paths, cfg.switch_name)
    cut = {name for name, (src, dst) in owners.items() if src != dst}
    assert cut == {
        name for name in owners if name.startswith("sw") and "->sw" in name
    }
    assert len(cut) == 4 * 3  # full trunk mesh between 4 pod switches


def test_flat_world_sharding_cuts_host_switch_links():
    # one switch, two shards: the switch lives on shard 0, so every link
    # touching a shard-1 host crosses the boundary
    plan = ShardPlan(n_procs=2, n_pods=1, n_shards=2)
    cfg = ClusterConfig(n_hosts=2, n_pods=1)
    owners = plan.link_shards(cfg.n_paths, cfg.switch_name)
    assert owners["h0p0->sw0"] == (0, 0)
    assert owners["h1p0->sw0"] == (1, 0)
    assert owners["sw0->h1p0"] == (0, 1)


# ---------------------------------------------------------------------------
# serial vs sharded bit-identity
# ---------------------------------------------------------------------------
def _canonical(result: PDESResult) -> str:
    """Everything a parity comparison may look at, as one JSON blob."""
    return json.dumps(
        {
            "results": result.results,
            "events": result.events_processed,
            "horizon": result.horizon_ns,
            "metrics": result.metrics,
        },
        sort_keys=True,
    )


def _parity(config: WorldConfig, app, n_shards: int, horizon_ns: int) -> None:
    serial = run_sharded(app, config=config, horizon_ns=horizon_ns, n_shards=1)
    sharded = run_sharded(
        app, config=config, horizon_ns=horizon_ns, n_shards=n_shards
    )
    assert sharded.events_processed == serial.events_processed
    assert _canonical(sharded) == _canonical(serial)


def test_fig8_world_serial_vs_sharded_identical():
    # the paper's flat-switch testbed shape, cut host-vs-switch
    _parity(
        WorldConfig(n_procs=2, rpi="sctp", seed=3),
        make_pingpong(4096, 2),
        n_shards=2,
        horizon_ns=SECOND,
    )


def test_multi_switch_world_serial_vs_sharded_identical():
    # pod world: 4 ranks over 2 pod switches + trunks, cut pod-vs-pod
    _parity(
        WorldConfig(n_procs=4, rpi="sctp", seed=3, n_pods=2),
        make_halo(2048, 2),
        n_shards=2,
        horizon_ns=SECOND,
    )


def test_tcp_world_serial_vs_sharded_identical():
    _parity(
        WorldConfig(n_procs=2, rpi="tcp", seed=5),
        make_pingpong(4096, 2),
        n_shards=2,
        horizon_ns=SECOND,
    )


def test_horizon_too_short_raises():
    from repro.simkernel.pdes import HorizonError

    with pytest.raises(HorizonError, match="horizon"):
        run_sharded(
            make_pingpong(4096, 2),
            config=WorldConfig(n_procs=2, rpi="sctp", seed=3),
            horizon_ns=1000,  # 1us: MPI_Init cannot even finish
            n_shards=1,
        )


# ---------------------------------------------------------------------------
# shard supervision: crash/hang detection and graceful degradation
# ---------------------------------------------------------------------------
def _degrade_case(chaos: str, shard_timeout_s: float = 5.0, **kw) -> PDESResult:
    return run_sharded(
        make_pingpong(4096, 2),
        config=WorldConfig(n_procs=2, rpi="sctp", seed=3),
        horizon_ns=SECOND,
        n_shards=2,
        shard_timeout_s=shard_timeout_s,
        chaos=chaos,
        **kw,
    )


def test_killed_shard_degrades_to_serial_byte_identical(capsys):
    serial = run_sharded(
        make_pingpong(4096, 2),
        config=WorldConfig(n_procs=2, rpi="sctp", seed=3),
        horizon_ns=SECOND,
        n_shards=1,
    )
    degraded = _degrade_case("kill:1:1")
    assert degraded.degraded
    assert "exit code 70" in degraded.degraded_reason
    assert _canonical(degraded) == _canonical(serial)
    assert "degraded to serial" in capsys.readouterr().err
    # markers never leak into the shard-invariant comparison surface
    assert "degraded" not in _canonical(degraded)


def test_hung_shard_is_reaped_and_degrades():
    degraded = _degrade_case("hang:0:1", shard_timeout_s=2.0)
    assert degraded.degraded
    assert "stalled" in degraded.degraded_reason
    assert degraded.results  # the serial leg really ran


def test_no_degrade_raises_shard_failure():
    from repro.simkernel.pdes import ShardExchangeError, ShardFailure

    with pytest.raises(ShardFailure, match="shard 1"):
        _degrade_case("kill:1:1", degrade_to_serial=False)
    assert issubclass(ShardFailure, ShardExchangeError)  # old handlers still catch


def test_healthy_run_is_not_degraded():
    result = run_sharded(
        make_pingpong(4096, 2),
        config=WorldConfig(n_procs=2, rpi="sctp", seed=3),
        horizon_ns=SECOND,
        n_shards=2,
        shard_timeout_s=30.0,
    )
    assert not result.degraded and result.degraded_reason is None


def test_chaos_spec_validation():
    from repro.simkernel.pdes import _parse_chaos

    assert _parse_chaos(None, 2) is None
    assert _parse_chaos("kill:1", 2) == ("kill", 1, 1)
    assert _parse_chaos("hang:0:3", 2) == ("hang", 0, 3)
    for bad in ("kill", "boom:0", "kill:2", "kill:0:0", "kill:0:1:2"):
        with pytest.raises(ValueError):
            _parse_chaos(bad, 2)
