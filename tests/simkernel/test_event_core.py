"""Event-core edge cases: timer pooling, compaction interplay, seq
renumbering, and the sanitize-mode poisoning that guards the pools."""

import pytest

from repro.analyze.sanitize import POOL_POISON, InvariantViolation, sanitized
from repro.simkernel import Kernel
from repro.simkernel.kernel import Timer


# ---------------------------------------------------------------------------
# timer free-list pool
# ---------------------------------------------------------------------------
def test_fired_timer_is_recycled_and_reused():
    k = Kernel()
    fired = []
    first = k.call_after(10, fired.append, "a")
    k.run()
    assert fired == ["a"]
    # the consumed handle is dead and parked on the free list...
    assert first.cancelled and first._kernel is None
    assert k._timer_pool == [first]
    # ...and the next call_after hands back the very same object
    second = k.call_after(5, fired.append, "b")
    assert second is first
    assert not second.cancelled
    k.run()
    assert fired == ["a", "b"]


def test_cancelled_timer_recycles_when_its_entry_pops():
    k = Kernel()
    timer = k.call_after(10, pytest.fail, "cancelled timer fired")
    timer.cancel()
    assert k._timer_pool == []  # lazy: entry still queued
    k.run()  # pops the dead entry without firing it
    assert k._timer_pool == [timer]
    reused = k.call_after(1, lambda: None)
    assert reused is timer


def test_stale_cancel_after_fire_is_noop_and_does_not_corrupt_pool():
    k = Kernel()
    timer = k.call_after(1, lambda: None)
    k.run()
    timer.cancel()  # stale handle: dead already, must change nothing
    assert k.pending_events() == 0
    assert len(k._timer_pool) == 1
    k.call_after(1, lambda: None)
    k.run()
    assert k.events_processed == 2


def test_post_path_never_touches_the_timer_pool():
    k = Kernel()
    for i in range(10):
        k.post_after(i, lambda: None)
    k.run()
    assert k._timer_pool == []


# ---------------------------------------------------------------------------
# compaction x pooling
# ---------------------------------------------------------------------------
def test_compaction_recycles_cancelled_timers_and_preserves_order():
    k = Kernel()
    k.COMPACT_MIN_HEAP = 64  # instance override: trigger cheaply
    fired = []
    keep = [k.call_at(1_000 + i, fired.append, i) for i in range(20)]
    doomed = [k.call_at(100 + i, pytest.fail, "dead") for i in range(200)]
    for timer in doomed:
        timer.cancel()
    # >half the heap was cancelled past the floor: compacted (possibly
    # several times, as each cancel wave re-crosses the threshold)
    assert k.heap_compactions >= 1
    assert len(keep) <= len(k._heap) < len(keep) + len(doomed)
    k.run()
    assert fired == list(range(20))  # FIFO order survives the rebuild
    # every handle — compacted, popped, or fired — ends up in the pool
    assert len(k._timer_pool) == len(keep) + len(doomed)


def test_pool_survivors_are_reused_after_compaction():
    k = Kernel()
    k.COMPACT_MIN_HEAP = 8
    doomed = [k.call_after(10 + i, lambda: None) for i in range(32)]
    for timer in doomed:
        timer.cancel()
    assert k.heap_compactions >= 1
    pooled = len(k._timer_pool)
    assert pooled > 0
    # scheduling drains the pool (reusing compacted handles) before
    # allocating anything new
    fresh = [k.call_after(1 + i, lambda: None) for i in range(pooled)]
    assert set(map(id, fresh)) <= set(map(id, doomed))
    assert k._timer_pool == []
    k.run()


# ---------------------------------------------------------------------------
# sequence-counter renumbering
# ---------------------------------------------------------------------------
def test_seq_renumber_preserves_fifo_under_production_mask():
    k = Kernel()
    k.SEQ_LIMIT = 16  # instance override: wrap after a handful of events
    order = []
    # same-timestamp events spanning several renumbers: FIFO must hold
    for i in range(100):
        if i % 2:
            k.post_at(500, order.append, i)
        else:
            k.call_at(500, order.append, i)
    k.run()
    assert order == list(range(100))
    assert k.seq_renumbers >= 1


def test_seq_renumber_interleaves_with_firing():
    k = Kernel()
    k.SEQ_LIMIT = 8
    order = []

    def chain(i):
        order.append(i)
        if i < 50:
            k.post_after(0, chain, i + 1)

    k.post_after(1, chain, 0)
    k.run()
    assert order == list(range(51))
    assert k.seq_renumbers >= 1


def test_nonzero_tiebreak_mask_skips_renumbering():
    k = Kernel(tiebreak_mask=0b1)
    k.SEQ_LIMIT = 8
    fired = []
    for i in range(64):
        k.post_at(100 + i, fired.append, i)  # distinct times: order by when
    k.run()
    assert fired == list(range(64))
    assert k.seq_renumbers == 0  # masked kernels grow keys instead


# ---------------------------------------------------------------------------
# sanitize-mode pool poisoning
# ---------------------------------------------------------------------------
def test_pooled_timers_are_poisoned_under_sanitizers():
    with sanitized(True):
        k = Kernel()
        k.call_after(1, lambda: None)
        k.run()
        (pooled,) = k._timer_pool
        assert pooled.fn is POOL_POISON
        assert pooled.args is POOL_POISON


def test_touched_pool_entry_is_caught_on_acquire():
    with sanitized(True):
        k = Kernel()
        k.call_after(1, lambda: None)
        k.run()
        k._timer_pool[0].fn = lambda: None  # use-after-recycle write
        with pytest.raises(InvariantViolation, match="pool"):
            k.call_after(1, lambda: None)


def test_poisoned_entry_reaching_dispatch_is_caught():
    with sanitized(True):
        k = Kernel()
        timer = Timer(5, POOL_POISON, (), k)
        import heapq

        heapq.heappush(k._heap, (5, 1, timer, None))
        k._live_events += 1
        with pytest.raises(InvariantViolation, match="pool"):
            k.run()


def test_audit_flags_live_poisoned_heap_entry():
    with sanitized(True):
        k = Kernel()
        k.call_after(1, lambda: None)
        k.run()
        pooled = k._timer_pool[0]
        import heapq

        # a recycled handle illegally re-queued as if it were live
        heapq.heappush(k._heap, (10, 99, pooled, None))
        pooled.cancelled = False
        with pytest.raises(InvariantViolation, match="use-after-recycle"):
            k._san.audit()
