"""Kernel: clock, timers, ordering, determinism, run_until."""

import pytest

from repro.simkernel import Kernel
from repro.simkernel.kernel import DeadlockError


def test_clock_starts_at_zero():
    assert Kernel().now == 0


def test_call_after_fires_at_right_time():
    k = Kernel()
    fired = []
    k.call_after(100, lambda: fired.append(k.now))
    k.run()
    assert fired == [100]


def test_call_at_absolute_time():
    k = Kernel()
    fired = []
    k.call_at(250, fired.append, "x")
    k.run()
    assert fired == ["x"] and k.now == 250


def test_cannot_schedule_in_the_past():
    k = Kernel()
    k.call_after(10, lambda: None)
    k.run()
    with pytest.raises(ValueError):
        k.call_at(5, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Kernel().call_after(-1, lambda: None)


def test_fifo_tiebreak_at_same_timestamp():
    k = Kernel()
    order = []
    for i in range(10):
        k.call_at(50, order.append, i)
    k.run()
    assert order == list(range(10))


def test_timer_cancellation():
    k = Kernel()
    fired = []
    timer = k.call_after(10, fired.append, "no")
    k.call_after(5, timer.cancel)
    k.run()
    assert fired == []


def test_cancel_after_fire_is_noop():
    k = Kernel()
    timer = k.call_after(1, lambda: None)
    k.run()
    timer.cancel()  # must not raise


def test_run_until_time_limit():
    k = Kernel()
    fired = []
    k.call_after(100, fired.append, 1)
    k.call_after(200, fired.append, 2)
    k.run(until=150)
    assert fired == [1] and k.now == 150
    k.run()
    assert fired == [1, 2]


def test_run_max_events():
    k = Kernel()
    for i in range(5):
        k.call_after(i + 1, lambda: None)
    assert k.run(max_events=3) == 3
    assert k.run() == 2


def test_nested_scheduling():
    k = Kernel()
    seen = []

    def outer():
        seen.append(("outer", k.now))
        k.call_after(7, inner)

    def inner():
        seen.append(("inner", k.now))

    k.call_after(3, outer)
    k.run()
    assert seen == [("outer", 3), ("inner", 10)]


def test_sleep_is_awaitable():
    k = Kernel()

    async def app():
        await k.sleep(42)
        return k.now

    task = k.spawn(app())
    k.run()
    assert task.result() == 42


def test_run_until_deadlock_detection():
    from repro.simkernel import Future

    k = Kernel()
    stuck = Future()
    with pytest.raises(DeadlockError):
        k.run_until(stuck)


def test_run_until_virtual_time_limit():
    from repro.simkernel import Future

    k = Kernel()
    stuck = Future()
    k.call_after(10_000, lambda: None)  # keeps the heap alive past the limit
    with pytest.raises(TimeoutError):
        k.run_until(stuck, limit=5_000)


def test_rng_streams_are_stable_and_independent():
    a1 = Kernel(seed=5).rng("alpha").random()
    a2 = Kernel(seed=5).rng("alpha").random()
    b = Kernel(seed=5).rng("beta").random()
    c = Kernel(seed=6).rng("alpha").random()
    assert a1 == a2
    assert a1 != b
    assert a1 != c


def test_failed_tasks_and_check_tasks():
    k = Kernel()

    async def boom():
        await k.sleep(1)
        raise ValueError("bang")

    k.spawn(boom())
    k.run()
    assert len(list(k.failed_tasks())) == 1
    with pytest.raises(ValueError, match="bang"):
        k.check_tasks()


def test_events_processed_counter():
    k = Kernel()
    for i in range(4):
        k.call_after(i + 1, lambda: None)
    k.run()
    assert k.events_processed == 4


def test_pending_events_excludes_cancelled():
    k = Kernel()
    t1 = k.call_after(10, lambda: None)
    k.call_after(20, lambda: None)
    t1.cancel()
    assert k.pending_events() == 1
