"""Hot-path accounting: O(1) pending_events, heap compaction, run edges.

These are the regression tests for the fast-path work: live-timer
accounting must stay a maintained counter (not a heap scan), lazy
deletion must compact once cancelled entries dominate a large heap, and
compaction must never change event order.
"""

import pytest

from repro.simkernel import Future, Kernel
from repro.simkernel.kernel import DeadlockError


def _noop() -> None:
    return None


# -- O(1) live-event accounting ---------------------------------------------
def test_pending_events_after_10k_cancellations():
    """10k cancelled retransmission-style timers: the live counter is
    maintained, and the dead entries do not linger in the heap."""
    k = Kernel()
    keep = [k.call_after(50_000 + i, _noop) for i in range(3)]
    churn = [k.call_after(1_000 + i, _noop) for i in range(10_000)]
    assert k.pending_events() == 10_003
    for timer in churn:
        timer.cancel()
    # counter is exact immediately, without running the kernel
    assert k.pending_events() == len(keep)
    # a heap that was >50% cancelled and >=1024 entries must have been
    # compacted, so the 10k dead entries are gone, not just flagged
    assert k.heap_compactions >= 1
    assert len(k._heap) < 1024
    assert k._cancelled_in_heap < 1024
    assert k.run() == len(keep)
    assert k.pending_events() == 0


def test_pending_events_counter_tracks_fire_and_cancel():
    k = Kernel()
    t = k.call_after(10, _noop)
    k.post_after(20, _noop)
    assert k.pending_events() == 2
    k.run(until=10)
    assert k.pending_events() == 1
    t.cancel()  # already fired: must not decrement again
    assert k.pending_events() == 1
    k.run()
    assert k.pending_events() == 0


def test_double_cancel_accounts_once():
    k = Kernel()
    t = k.call_after(10, _noop)
    k.call_after(20, _noop)
    t.cancel()
    t.cancel()
    assert k.pending_events() == 1
    assert k.run() == 1


# -- lazy-deletion compaction -----------------------------------------------
def test_compaction_needs_min_heap_size():
    """Below COMPACT_MIN_HEAP entries, cancellation stays lazy."""
    k = Kernel()
    timers = [k.call_after(1 + i, _noop) for i in range(Kernel.COMPACT_MIN_HEAP - 1)]
    for t in timers:
        t.cancel()
    assert k.heap_compactions == 0
    assert k._cancelled_in_heap == len(timers)
    # crossing the size threshold with a majority cancelled compacts
    extra = k.call_after(10_000, _noop)
    extra.cancel()
    assert k.heap_compactions == 1
    assert k._cancelled_in_heap == 0
    assert len(k._heap) == 0


def test_compaction_needs_cancelled_majority():
    """Exactly half cancelled is not enough; one more tips it."""
    k = Kernel()
    n = 2 * Kernel.COMPACT_MIN_HEAP
    timers = [k.call_after(1 + i, _noop) for i in range(n)]
    for t in timers[: n // 2]:
        t.cancel()
    assert k.heap_compactions == 0
    timers[n // 2].cancel()
    assert k.heap_compactions == 1
    assert k._cancelled_in_heap == 0
    assert len(k._heap) == n // 2 - 1
    assert k.pending_events() == n // 2 - 1


def test_compaction_preserves_fire_order():
    """An aggressively-compacting kernel fires the survivors in exactly
    the order a never-compacting kernel does (keys are unique)."""

    def program(k: Kernel, record):
        timers = {}
        for i in range(512):
            # interleave cancellable and surviving timers at clashing times
            timers[i] = k.call_after(1 + (i % 17), record, ("t", i))
            if i % 4 == 0:  # some fire-and-forget entries, not so many
                k.post_after(1 + (i % 17), record, ("p", i))  # that cancelled
                # timers can never reach a majority of the heap
        for i in range(512):
            if i % 4 != 3:  # cancel a clear majority of the heap
                timers[i].cancel()
        k.run()

    eager = Kernel()
    eager.COMPACT_MIN_HEAP = 4  # per-instance: compact almost every cancel
    lazy = Kernel()
    lazy.COMPACT_MIN_HEAP = 1 << 30  # never compact

    fired_eager, fired_lazy = [], []
    program(eager, fired_eager.append)
    program(lazy, fired_lazy.append)
    assert eager.heap_compactions > 0
    assert lazy.heap_compactions == 0
    assert fired_eager == fired_lazy


def test_compaction_during_run_keeps_heap_reference_valid():
    """run() holds the heap list; in-place compaction must stay visible."""
    k = Kernel()
    k.COMPACT_MIN_HEAP = 8
    fired = []
    victims = [k.call_after(100 + i, fired.append, ("no", i)) for i in range(64)]
    k.call_after(200, fired.append, "survivor")

    def cancel_all():
        for t in victims:
            t.cancel()

    k.call_after(1, cancel_all)  # compaction happens mid-run
    k.run()
    assert fired == ["survivor"]
    assert k.heap_compactions >= 1


# -- run(until=...) edge cases ----------------------------------------------
def test_run_until_fires_event_exactly_at_limit():
    k = Kernel()
    fired = []
    k.call_after(100, fired.append, 1)
    assert k.run(until=100) == 1
    assert fired == [1] and k.now == 100


def test_run_until_advances_clock_on_empty_heap():
    k = Kernel()
    assert k.run(until=500) == 0
    assert k.now == 500
    # a second run with an earlier until must not move the clock back
    assert k.run(until=200) == 0
    assert k.now == 500


def test_run_until_with_max_events_interaction():
    k = Kernel()
    fired = []
    for i in range(5):
        k.call_after(i + 1, fired.append, i)
    assert k.run(until=3, max_events=2) == 2
    assert fired == [0, 1] and k.now == 2  # stopped by max_events first
    assert k.run(until=3) == 1
    assert fired == [0, 1, 2] and k.now == 3
    assert k.run() == 2


def test_run_until_skips_cancelled_without_counting():
    k = Kernel()
    fired = []
    t = k.call_after(10, fired.append, "no")
    k.call_after(20, fired.append, "yes")
    t.cancel()
    assert k.run(until=50) == 1  # the cancelled pop is not an event
    assert fired == ["yes"] and k.now == 50


# -- run_until(limit=...) edge cases ----------------------------------------
def test_run_until_limit_event_exactly_at_limit_completes():
    k = Kernel()
    fut = Future()
    k.call_after(100, fut.set_result, "done")
    assert k.run_until(fut, limit=100) == "done"
    assert k.now == 100


def test_run_until_limit_timeout_leaves_event_pending():
    k = Kernel()
    fut = Future()
    k.call_after(200, fut.set_result, "late")
    with pytest.raises(TimeoutError):
        k.run_until(fut, limit=100)
    assert k.now <= 100
    # the blocked event was not consumed: a later unlimited run fires it
    assert k.run() == 1
    assert fut.result() == "late"


def test_run_until_deadlock_reports_current_time():
    k = Kernel()
    k.call_after(10, _noop)
    fut = Future()
    with pytest.raises(DeadlockError, match="t=10ns"):
        k.run_until(fut)


def test_run_until_counts_into_events_processed():
    k = Kernel()
    fut = Future()
    k.call_after(1, _noop)
    k.call_after(2, fut.set_result, None)
    k.run_until(fut)
    assert k.events_processed == 2


# -- fire-and-forget scheduling edges ---------------------------------------
def test_post_at_rejects_past_and_post_after_rejects_negative():
    k = Kernel()
    k.call_after(10, _noop)
    k.run()
    with pytest.raises(ValueError):
        k.post_at(5, _noop)
    with pytest.raises(ValueError):
        k.post_after(-1, _noop)


def test_post_and_call_share_one_ordering():
    """post_* and call_* interleave FIFO at equal timestamps."""
    k = Kernel()
    order = []
    k.call_at(50, order.append, "timer-0")
    k.post_at(50, order.append, "post-1")
    k.call_at(50, order.append, "timer-2")
    k.post_at(50, order.append, "post-3")
    k.run()
    assert order == ["timer-0", "post-1", "timer-2", "post-3"]
