"""Unit conversion helpers, incl. property-based checks."""

import pytest
from hypothesis import given, strategies as st

from repro.simkernel import GBIT_PER_S, MBIT_PER_S, SECOND, tx_time_ns
from repro.simkernel.units import ns_to_seconds, seconds_to_ns


def test_known_serialization_times():
    # 1500 B at 1 Gbit/s = 12 microseconds
    assert tx_time_ns(1500, GBIT_PER_S) == 12_000
    # 125 bytes at 1 Mbit/s = 1 ms
    assert tx_time_ns(125, MBIT_PER_S) == 1_000_000


def test_zero_bytes_still_takes_one_ns():
    assert tx_time_ns(0, GBIT_PER_S) == 1


def test_invalid_inputs():
    with pytest.raises(ValueError):
        tx_time_ns(-1, GBIT_PER_S)
    with pytest.raises(ValueError):
        tx_time_ns(100, 0)


@given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=1, max_value=10**11))
def test_tx_time_monotone_in_bytes(nbytes, rate):
    assert tx_time_ns(nbytes, rate) <= tx_time_ns(nbytes + 1, rate)


@given(st.integers(min_value=1, max_value=10**9), st.integers(min_value=1, max_value=10**10))
def test_tx_time_rounds_up(nbytes, rate):
    t = tx_time_ns(nbytes, rate)
    # t is the smallest ns count whose transmitted bits cover the payload
    assert t * rate >= nbytes * 8 * SECOND or t == 1


@given(st.integers(min_value=0, max_value=10**15))
def test_seconds_roundtrip(ns):
    assert seconds_to_ns(ns_to_seconds(ns)) == pytest.approx(ns, abs=1)
