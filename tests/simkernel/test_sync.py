"""wait_all / wait_any / AsyncEvent / AsyncQueue."""

import pytest

from repro.simkernel import AsyncEvent, AsyncQueue, Future, Kernel, wait_all, wait_any


def test_wait_all_collects_in_order():
    k = Kernel()
    futures = [Future() for _ in range(3)]
    done = wait_all(futures)
    futures[2].set_result("c")
    futures[0].set_result("a")
    assert not done.done()
    futures[1].set_result("b")
    assert done.result() == ["a", "b", "c"]


def test_wait_all_empty():
    assert wait_all([]).result() == []


def test_wait_all_propagates_exception():
    futures = [Future(), Future()]
    done = wait_all(futures)
    futures[1].set_exception(ValueError("bad"))
    with pytest.raises(ValueError):
        done.result()


def test_wait_any_returns_first_index():
    futures = [Future() for _ in range(3)]
    done = wait_any(futures)
    futures[1].set_result("winner")
    assert done.result() == (1, "winner")
    futures[0].set_result("late")  # must not disturb the settled result
    assert done.result() == (1, "winner")


def test_wait_any_immediate_when_already_done():
    f = Future()
    f.set_result(9)
    assert wait_any([Future(), f]).result() == (1, 9)


def test_wait_any_requires_input():
    with pytest.raises(ValueError):
        wait_any([])


def test_event_releases_current_and_future_waiters():
    ev = AsyncEvent()
    w1 = ev.wait()
    assert not w1.done()
    ev.set()
    assert w1.done()
    assert ev.wait().done()  # post-set waits resolve immediately


def test_event_clear_rearms():
    ev = AsyncEvent()
    ev.set()
    ev.clear()
    assert not ev.is_set()
    assert not ev.wait().done()


def test_event_double_set_is_noop():
    ev = AsyncEvent()
    ev.set()
    ev.set()
    assert ev.is_set()


def test_queue_fifo():
    q = AsyncQueue()
    q.put(1)
    q.put(2)
    assert q.get().result() == 1
    assert q.get().result() == 2


def test_queue_waiter_served_on_put():
    q = AsyncQueue()
    getter = q.get()
    assert not getter.done()
    q.put("item")
    assert getter.result() == "item"
    assert len(q) == 0


def test_queue_get_nowait_raises_when_empty():
    with pytest.raises(IndexError):
        AsyncQueue().get_nowait()


def test_queue_put_many_preserves_order():
    q = AsyncQueue()
    q.put_many("abc")
    assert [q.get().result() for _ in range(3)] == ["a", "b", "c"]


def test_queue_with_kernel_tasks():
    k = Kernel()
    q = AsyncQueue()
    got = []

    async def consumer():
        for _ in range(3):
            got.append(await q.get())

    async def producer():
        for i in range(3):
            await k.sleep(10)
            q.put(i)

    k.spawn(consumer())
    k.spawn(producer())
    k.run()
    assert got == [0, 1, 2]
