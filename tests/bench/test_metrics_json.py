"""The bench harness's --metrics-json mode: determinism + document shape."""

import json

from repro.bench import ExperimentRow
from repro.bench import __main__ as bench_main
from repro.core.world import run_app
from repro.metrics import MetricsCollector


async def _tiny(comm):
    if comm.rank == 0:
        await comm.send(b"z" * 2048, dest=1)
    else:
        await comm.recv(source=0)
    return comm.rank


def _tiny_experiment(seed: int = 5):
    result = run_app(_tiny, n_procs=2, rpi="sctp", seed=seed)
    return [
        ExperimentRow(
            label="tiny exchange",
            measured={"duration_s": result.duration_s},
            paper={"shape": "n/a"},
        )
    ]


def test_same_seed_runs_serialise_byte_identically():
    def one():
        with MetricsCollector() as col:
            _tiny_experiment()
        return json.dumps(col.runs, sort_keys=True, indent=2)

    assert one() == one()


def test_row_to_jsonable_round_trips():
    row = _tiny_experiment()[0]
    doc = row.to_jsonable()
    json.dumps(doc)  # stock encoder, no numpy leakage
    assert doc["label"] == "tiny exchange"
    assert isinstance(doc["measured"]["duration_s"], float)


def test_cli_writes_metrics_json(tmp_path, monkeypatch, capsys):
    out = tmp_path / "m.json"
    monkeypatch.setitem(
        bench_main.EXPERIMENTS, "tiny", ("Tiny exchange", _tiny_experiment)
    )
    rc = bench_main.main(["tiny", "--metrics-json", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == 1
    exp = doc["experiments"]["tiny"]
    assert exp["title"] == "Tiny exchange"
    assert len(exp["rows"]) == 1
    assert len(exp["runs"]) == 1
    run = exp["runs"][0]
    assert "rpi=sctp" in run["label"]
    assert run["metrics"]["transport.sctp.node1.messages_delivered"] >= 1
    # wall-clock time is printed but never serialised
    assert "wall" in capsys.readouterr().out
    assert "wall" not in out.read_text()


def test_cli_without_flag_collects_nothing(monkeypatch):
    monkeypatch.setitem(
        bench_main.EXPERIMENTS, "tiny", ("Tiny exchange", _tiny_experiment)
    )
    assert bench_main.main(["tiny"]) == 0


def test_cli_rejects_unknown_experiment():
    assert bench_main.main(["nonesuch"]) == 2
