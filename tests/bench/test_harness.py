"""Bench harness plumbing (fast checks; the experiments themselves run
under `pytest benchmarks/`)."""

import os

from repro.bench import ExperimentRow, format_table
from repro.bench.harness import FIG8_SIZES, TABLE1_PAPER, full_scale, scaled


def test_scaled_picks_by_env(monkeypatch):
    monkeypatch.delenv("REPRO_FULL", raising=False)
    assert not full_scale()
    assert scaled(10, 100) == 10
    monkeypatch.setenv("REPRO_FULL", "1")
    assert full_scale()
    assert scaled(10, 100) == 100


def test_format_table_renders_measured_and_paper():
    rows = [
        ExperimentRow(
            label="case-a",
            measured={"x": 1.5, "big": 123456.0},
            paper={"x": 2.0},
            note="scaled",
        ),
        ExperimentRow(label="case-b", measured={"y": 3}),
    ]
    text = format_table("My Table", rows)
    assert "My Table" in text
    assert "case-a" in text and "case-b" in text
    assert "paper:" in text
    assert "123,456" in text
    assert "(scaled)" in text


def test_paper_reference_values_match_the_paper():
    # Table 1 as published (§4.1.1)
    assert TABLE1_PAPER[(30 * 1024, 0.01)] == (54_779, 1_924)
    assert TABLE1_PAPER[(300 * 1024, 0.02)] == (2_825, 885)
    # Fig. 8 sweeps up to the paper's largest plotted size
    assert FIG8_SIZES[-1] == 131069


def test_fig10_11_12_reference_ratios():
    from repro.bench.harness import FIG10_PAPER, FIG12_PAPER

    # the text's claims: 10-11x short-message gap at loss (fig 10) ...
    s, t = FIG10_PAPER[("short", 0.02)]
    assert 10 < t / s < 13
    # ... 2.58x/2.7x long-message gap ...
    s, t = FIG10_PAPER[("long", 0.01)]
    assert 2.4 < t / s < 2.8
    # ... ~35% single-stream penalty at 2% loss (fig 12)
    m10, m1 = FIG12_PAPER[("short", 0.02)]
    assert 1.3 < m1 / m10 < 1.4
