"""Parallel bench fan-out: cell decomposition and serial/parallel parity.

The CI gate diffs full serial vs ``--jobs 4`` metrics documents byte for
byte; these tests cover the same contract at unit scale so a parity
break is caught in seconds, not at the end of a matrix run.
"""

import json

import pytest

from repro.bench import harness, multihoming_failover
from repro.bench.parallel import run_experiments


def test_experiment_cells_are_stable_and_ordered():
    first = harness.experiment_cells("fig8")
    second = harness.experiment_cells("fig8")
    assert first and first == second
    assert all(isinstance(key, str) for key in first)
    assert len(set(first)) == len(first)


def test_unknown_experiment_and_cell_raise():
    with pytest.raises(KeyError):
        harness.experiment_cells("nope")
    with pytest.raises(KeyError):
        harness.run_experiment_cell("nope", "1")
    with pytest.raises(KeyError):
        harness.run_experiment_cell("fig8", "no-such-cell")


def test_cell_union_matches_full_experiment():
    """Running an experiment cell-by-cell reproduces the monolithic run."""
    merged = run_experiments(["failover"], jobs=1)
    direct = [row.to_jsonable() for row in multihoming_failover()]
    assert merged["failover"]["rows"] == direct


def test_parallel_matches_serial_including_metrics():
    """jobs=2 fan-out merges to the exact serial document (cell order,
    rows, and metrics snapshots)."""
    serial = run_experiments(["fig8"], jobs=1, with_metrics=True)
    parallel = run_experiments(["fig8"], jobs=2, with_metrics=True)
    assert json.dumps(serial, sort_keys=True) == json.dumps(parallel, sort_keys=True)
    assert serial["fig8"]["rows"]  # non-vacuous
    assert serial["fig8"]["runs"]
