"""Parallel bench fan-out: cell decomposition and serial/parallel parity.

The CI gate diffs full serial vs ``--jobs 4`` metrics documents byte for
byte; these tests cover the same contract at unit scale so a parity
break is caught in seconds, not at the end of a matrix run.
"""

import json

import pytest

from repro.bench import harness, multihoming_failover
from repro.bench.parallel import run_experiments


def test_experiment_cells_are_stable_and_ordered():
    first = harness.experiment_cells("fig8")
    second = harness.experiment_cells("fig8")
    assert first and first == second
    assert all(isinstance(key, str) for key in first)
    assert len(set(first)) == len(first)


def test_unknown_experiment_and_cell_raise():
    with pytest.raises(KeyError):
        harness.experiment_cells("nope")
    with pytest.raises(KeyError):
        harness.run_experiment_cell("nope", "1")
    with pytest.raises(KeyError):
        harness.run_experiment_cell("fig8", "no-such-cell")


def test_cell_union_matches_full_experiment():
    """Running an experiment cell-by-cell reproduces the monolithic run."""
    merged = run_experiments(["failover"], jobs=1)
    direct = [row.to_jsonable() for row in multihoming_failover()]
    assert merged["failover"]["rows"] == direct


def test_parallel_matches_serial_including_metrics():
    """jobs=2 fan-out merges to the exact serial document (cell order,
    rows, and metrics snapshots)."""
    serial = run_experiments(["fig8"], jobs=1, with_metrics=True)
    parallel = run_experiments(["fig8"], jobs=2, with_metrics=True)
    assert json.dumps(serial, sort_keys=True) == json.dumps(parallel, sort_keys=True)
    assert serial["fig8"]["rows"]  # non-vacuous
    assert serial["fig8"]["runs"]


def test_worker_exception_names_the_failing_cell():
    """A failing cell's identity and the original exception survive into
    the parent-side error instead of a bare multiprocessing traceback."""
    from repro.bench.parallel import _run_cell, CellError

    with pytest.raises(CellError, match=r"fig8:no-such-cell"):
        _run_cell(("fig8", "no-such-cell", False))


def test_parallel_worker_crash_is_attributed():
    """Strict pool_map raises naming the failed task, not a hung join."""
    from repro.bench.parallel import pool_map
    from repro.supervise.executor import SuperviseError

    with pytest.raises(SuperviseError, match="cell-b"):
        pool_map(_crash_item, [1, 2], jobs=2, task_ids=["cell-a", "cell-b"])


def _crash_item(x):
    if x == 2:
        import os

        os._exit(3)  # simulate a segfault/OOM-killed worker
    return x
