"""Supervised fan-out contract: crash/hang/deadline detection, bounded
deterministic retry, quarantine, and input-order results.

Worker bodies are module-level (the executor addresses work by callable
+ plain items, so spawn platforms work too); injected failures go
through the same ``SupervisePolicy.chaos`` hook the chaos selftest and
CI job use, so these tests exercise the real detection paths.
"""

import time

import pytest

from repro.supervise import (
    CRASH,
    DEADLINE,
    ERROR,
    HANG,
    OK,
    SupervisePolicy,
    backoff_delay,
    current_attempt,
    supervised_map,
)

FAST = dict(backoff_base_s=0.01, backoff_factor=2.0, backoff_max_s=0.05)


def square(x):
    return x * x


def flaky_error(x):
    if current_attempt() == 1:
        raise RuntimeError(f"transient failure for {x}")
    return x * x


def sleep_forever(_x):
    time.sleep(600)  # repro: allow[AN101] — deliberately hung worker body


def test_plain_map_results_in_input_order():
    outcome = supervised_map(square, [3, 1, 2], jobs=2)
    assert outcome.results == [9, 1, 4]
    assert outcome.ok
    assert outcome.manifest == [] and outcome.quarantined == []


def test_empty_items():
    outcome = supervised_map(square, [], jobs=4)
    assert outcome.results == [] and outcome.ok


def test_crash_is_detected_and_retried():
    policy = SupervisePolicy(
        max_attempts=2, chaos={"t0": ("crash",)}, **FAST
    )
    outcome = supervised_map(square, [5], jobs=1, policy=policy, task_ids=["t0"])
    assert outcome.results == [25] and outcome.ok
    [rec] = outcome.manifest
    assert rec["task"] == "t0" and rec["outcome"] == "recovered"
    assert [a["outcome"] for a in rec["attempts"]] == [CRASH, OK]
    assert "exit" in rec["attempts"][0]["detail"]


def test_hang_is_killed_and_retried():
    policy = SupervisePolicy(
        max_attempts=2,
        heartbeat_s=0.05,
        hang_timeout_s=0.5,
        chaos={"t0": ("hang",)},
        **FAST,
    )
    outcome = supervised_map(square, [6], jobs=1, policy=policy, task_ids=["t0"])
    assert outcome.results == [36] and outcome.ok
    [rec] = outcome.manifest
    assert [a["outcome"] for a in rec["attempts"]] == [HANG, OK]


def test_real_hang_without_chaos_is_detected():
    """A worker body that genuinely never returns trips the deadline."""
    policy = SupervisePolicy(max_attempts=1, deadline_s=0.5, **FAST)
    outcome = supervised_map(sleep_forever, [0], jobs=1, policy=policy)
    assert outcome.results == [None]
    assert outcome.quarantined == ["0"]
    [rec] = outcome.manifest
    assert rec["attempts"][0]["outcome"] == DEADLINE


def test_persistent_crash_quarantines_after_max_attempts():
    policy = SupervisePolicy(
        max_attempts=3, chaos={"bad": ("crash", "crash", "crash")}, **FAST
    )
    outcome = supervised_map(
        square, [1, 2], jobs=2, policy=policy, task_ids=["bad", "good"]
    )
    assert outcome.results == [None, 4]
    assert outcome.quarantined == ["bad"] and not outcome.ok
    [rec] = outcome.manifest
    assert rec["outcome"] == "quarantined"
    assert len(rec["attempts"]) == 3  # the retry budget is really bounded
    assert all(a["outcome"] == CRASH for a in rec["attempts"])


def test_deterministic_errors_are_not_retried_by_default():
    policy = SupervisePolicy(max_attempts=3, chaos={"t": ("error",)}, **FAST)
    outcome = supervised_map(square, [7], jobs=1, policy=policy, task_ids=["t"])
    assert outcome.quarantined == ["t"]
    [rec] = outcome.manifest
    assert len(rec["attempts"]) == 1  # one ERROR, no retry
    assert rec["attempts"][0]["outcome"] == ERROR
    assert "ChaosInjected" in rec["attempts"][0]["detail"]


def test_retry_errors_opt_in_and_current_attempt():
    policy = SupervisePolicy(max_attempts=2, retry_errors=True, **FAST)
    outcome = supervised_map(flaky_error, [4], jobs=1, policy=policy)
    assert outcome.results == [16] and outcome.ok
    [rec] = outcome.manifest
    assert [a["outcome"] for a in rec["attempts"]] == [ERROR, OK]


def test_mixed_fanout_preserves_input_order_under_retries():
    policy = SupervisePolicy(
        max_attempts=2,
        heartbeat_s=0.05,
        hang_timeout_s=0.5,
        chaos={"a": ("crash",), "c": ("hang",)},
        **FAST,
    )
    outcome = supervised_map(
        square, [1, 2, 3, 4], jobs=4, policy=policy,
        task_ids=["a", "b", "c", "d"],
    )
    assert outcome.results == [1, 4, 9, 16]
    # manifest in input order, not completion order
    assert [rec["task"] for rec in outcome.manifest] == ["a", "c"]


def test_backoff_delay_is_deterministic_and_bounded():
    policy = SupervisePolicy(**FAST)
    d1 = backoff_delay(policy, "cell-x", 1)
    assert d1 == backoff_delay(policy, "cell-x", 1)  # pure function
    assert d1 != backoff_delay(policy, "cell-y", 1)  # per-task stream
    assert (
        d1 != backoff_delay(SupervisePolicy(seed=9, **FAST), "cell-x", 1)
    )  # per-seed stream
    for attempt in (1, 2, 3, 10):
        cap = min(0.01 * 2.0 ** (attempt - 1), 0.05)
        d = backoff_delay(policy, "cell-x", attempt)
        assert cap / 2 <= d < cap
    # the cap really clamps: huge attempt numbers stay under backoff_max_s
    assert backoff_delay(policy, "cell-x", 50) < 0.05


def test_policy_validation():
    with pytest.raises(ValueError):
        SupervisePolicy(max_attempts=0)
    with pytest.raises(ValueError):
        SupervisePolicy(heartbeat_s=0)
    with pytest.raises(ValueError):
        supervised_map(square, [1, 2], task_ids=["only-one"])
