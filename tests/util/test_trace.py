"""Packet tracing facility."""

from repro.util.blobs import RealBlob
from repro.util.trace import PacketTrace

from ..conftest import make_cluster, tcp_pair


def traced_exchange():
    kernel, cluster = make_cluster()
    trace = PacketTrace(kernel).attach(cluster.hosts)
    client, server, _ = tcp_pair(kernel, cluster)
    client.send(RealBlob(b"traced!"))
    kernel.run(until=kernel.now + 1_000_000_000)
    return kernel, cluster, trace


def test_records_tx_and_rx():
    kernel, cluster, trace = traced_exchange()
    assert trace.count(direction="tx") > 0
    assert trace.count(direction="rx") > 0
    # every packet received was also transmitted by someone
    assert trace.count(direction="rx") <= trace.count(direction="tx")


def test_filtering():
    kernel, cluster, trace = traced_exchange()
    assert trace.count(proto="tcp") == trace.count()
    assert trace.count(proto="sctp") == 0
    assert trace.count(host="node0") + trace.count(host="node1") == trace.count()


def test_timestamps_monotone():
    kernel, cluster, trace = traced_exchange()
    times = [e.t_ns for e in trace.entries]
    assert times == sorted(times)


def test_bytes_on_wire_accounting():
    kernel, cluster, trace = traced_exchange()
    tx_bytes = trace.bytes_on_wire(host="node0")
    assert tx_bytes > 7  # payload + headers


def test_to_text_and_format():
    kernel, cluster, trace = traced_exchange()
    text = trace.to_text(limit=5)
    assert "node0" in text and "tcp" in text
    assert len(text.splitlines()) <= 5


def test_detach_stops_recording():
    kernel, cluster = make_cluster()
    trace = PacketTrace(kernel).attach(cluster.hosts)
    client, server, _ = tcp_pair(kernel, cluster)
    trace.detach()
    n = trace.count()
    client.send(RealBlob(b"after detach"))
    kernel.run(until=kernel.now + 500_000_000)
    assert trace.count() == n


def test_max_entries_cap():
    kernel, cluster = make_cluster()
    trace = PacketTrace(kernel, max_entries=3).attach(cluster.hosts)
    client, server, _ = tcp_pair(kernel, cluster)
    client.send(RealBlob(b"x" * 50_000))
    kernel.run(until=kernel.now + 1_000_000_000)
    assert len(trace.entries) == 3
    assert trace.dropped > 0
    assert "truncated" in trace.to_text()
