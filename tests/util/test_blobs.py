"""Blob/ChunkList payload containers, with property-based slicing checks."""

import pytest
from hypothesis import given, strategies as st

from repro.util.blobs import ChunkList, RealBlob, SyntheticBlob, as_blob


def test_real_blob_basics():
    b = RealBlob(b"hello")
    assert len(b) == 5 and b.is_real and b.to_bytes() == b"hello"
    assert b.slice(1, 4).to_bytes() == b"ell"


def test_synthetic_blob_basics():
    b = SyntheticBlob(100, "x")
    assert len(b) == 100 and not b.is_real
    assert b.slice(10, 30).nbytes == 20
    assert b.to_bytes() == b"\x00" * 100


def test_synthetic_negative_size_rejected():
    with pytest.raises(ValueError):
        SyntheticBlob(-1)


def test_bad_slices_rejected():
    b = RealBlob(b"abc")
    for lo, hi in ((-1, 2), (2, 1), (0, 4)):
        with pytest.raises(ValueError):
            b.slice(lo, hi)


def test_as_blob_coercions():
    assert as_blob(b"x").to_bytes() == b"x"
    assert as_blob(bytearray(b"y")).to_bytes() == b"y"
    blob = SyntheticBlob(3)
    assert as_blob(blob) is blob
    with pytest.raises(TypeError):
        as_blob(123)


def test_chunklist_append_and_total():
    cl = ChunkList([RealBlob(b"ab")])
    cl.append(SyntheticBlob(3))
    cl.append(RealBlob(b""))  # empty pieces are dropped
    assert cl.nbytes == 5 and len(cl.pieces) == 2
    assert not cl.is_real


def test_chunklist_slice_across_pieces():
    cl = ChunkList([RealBlob(b"abcd"), RealBlob(b"efgh"), RealBlob(b"ijkl")])
    assert cl.slice(2, 10).to_bytes() == b"cdefghij"


def test_chunklist_split():
    cl = ChunkList([RealBlob(b"hello"), RealBlob(b"world")])
    left, right = cl.split(7)
    assert left.to_bytes() == b"hellowo" and right.to_bytes() == b"rld"


def test_chunklist_extend():
    a = ChunkList([RealBlob(b"12")])
    b = ChunkList([RealBlob(b"34")])
    a.extend(b)
    assert a.to_bytes() == b"1234"


@st.composite
def chunked_bytes(draw):
    data = draw(st.binary(min_size=0, max_size=200))
    pieces = []
    i = 0
    while i < len(data):
        n = draw(st.integers(min_value=1, max_value=40))
        pieces.append(RealBlob(data[i : i + n]))
        i += n
    return data, ChunkList(pieces)


@given(chunked_bytes(), st.data())
def test_chunklist_slice_matches_bytes_slice(pair, data):
    raw, cl = pair
    assert cl.to_bytes() == raw
    lo = data.draw(st.integers(min_value=0, max_value=len(raw)))
    hi = data.draw(st.integers(min_value=lo, max_value=len(raw)))
    assert cl.slice(lo, hi).to_bytes() == raw[lo:hi]


@given(chunked_bytes(), st.data())
def test_chunklist_split_partitions(pair, data):
    raw, cl = pair
    at = data.draw(st.integers(min_value=0, max_value=len(raw)))
    left, right = cl.split(at)
    assert left.to_bytes() + right.to_bytes() == raw
    assert left.nbytes == at
