"""Fig. 8 — MPBench ping-pong throughput, no loss, SCTP normalized to TCP.

Paper shape: TCP wins for small messages, SCTP wins for large ones, with
the crossover near 22 KiB.  We assert the two qualitative ends (TCP ahead
at <= 4 KiB, SCTP ahead at >= 96 KiB) and print the whole curve.
"""

from repro.bench import fig8_pingpong_noloss, format_table


def test_fig8_pingpong_noloss(once):
    rows = once(fig8_pingpong_noloss)
    print()
    print(format_table("Fig. 8: ping-pong throughput (no loss)", rows))
    ratios = {int(r.label.split()[1][:-1]): r.measured["sctp/tcp"] for r in rows}
    assert ratios[1] < 1.0, "TCP must win tiny messages"
    assert ratios[4096] < 1.05, "TCP competitive through small sizes"
    assert ratios[98302] > 1.0, "SCTP must win large messages"
    assert ratios[131069] > 1.05, "SCTP clearly ahead at 128K"
