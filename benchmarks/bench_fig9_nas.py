"""Fig. 9 — NAS Parallel Benchmarks, class B, 8 processes, Mop/s.

Paper shape: SCTP performance comparable to TCP on the NPB suite at
class B; TCP keeps an edge on the short-message-dominated MG and BT.
All kernels must pass their internal verification on both RPIs.
"""

import os

import pytest

from repro.bench import fig9_nas, format_table

CLS = os.environ.get("REPRO_NPB_CLASS", "B")


def test_fig9_nas_classB(once):
    rows = once(fig9_nas, CLS)
    print()
    print(format_table(f"Fig. 9: NPB class {CLS} Mop/s (8 procs)", rows))
    by_name = {r.label.split()[1].split(".")[0]: r for r in rows}
    for name, row in by_name.items():
        assert row.measured["verified"], f"{name} failed numerical verification"
        ratio = row.measured["sctp/tcp"]
        assert 0.5 < ratio < 2.0, f"{name}: protocols should be comparable, got {ratio:.2f}"
    # the paper's specific observation: TCP ahead on MG and BT
    assert by_name["MG"].measured["sctp/tcp"] < 1.1
    assert by_name["BT"].measured["sctp/tcp"] < 1.1


@pytest.mark.parametrize("cls", ["S", "W"])
def test_nas_class_sweep(once, cls):
    """§4.1.2 text: smaller datasets are short-message dominated and lean
    TCP-wards; verification must hold at every class."""
    rows = once(fig9_nas, cls)
    print()
    print(format_table(f"NPB class {cls} Mop/s (8 procs)", rows))
    for row in rows:
        assert row.measured["verified"], f"{row.label} failed verification"
