"""Fig. 11 — Bulk Processor Farm with Fanout=10.

Paper shape: shipping ten tasks per request makes the loss gap worse for
TCP (more back-to-back data behind any lost segment), especially for
long messages; SCTP degrades only mildly versus Fig. 10.
"""

from repro.bench import fig11_farm_fanout, format_table


def test_fig11_farm_fanout(once):
    rows = once(fig11_farm_fanout)
    print()
    print(format_table("Fig. 11: farm run times, fanout=10", rows))
    for row in rows:
        loss = row.label.split("loss=")[1]
        ratio = row.measured["tcp/sctp"]
        if loss == "0%":
            assert 0.4 < ratio < 2.5, f"{row.label}: no-loss runs comparable"
        else:
            assert ratio > 2.0, f"{row.label}: TCP must lose under loss ({ratio:.2f}x)"
