"""Simulator perf-regression microbenchmarks (wall-clock, not virtual).

Unlike every other bench in this directory — which reports *virtual-time*
results next to the paper's figures — this suite measures how fast the
simulator itself executes, and guards the hot-path optimisations
(``Kernel.post_at``, O(1) live-timer accounting, lazy-deletion heap
compaction, slotted packet/chunk objects) against silent regression:

* ``kernel_events``   — events/sec through a bare kernel (post_after chain)
* ``timer_churn``     — schedule+cancel/sec (exercises heap compaction)
* ``link_packets``    — packets/sec through a saturated Link
* ``fig8_cell``       — wall seconds for one end-to-end fig8 matrix cell
                        (both protocols, 16 KiB ping-pong)
* ``large_world``     — events/sec on a 16-rank, 4-pod halo-exchange
                        world (the PDES-shardable topology, run serially)

Run standalone (pytest never collects this file; it has no test_*
functions)::

    PYTHONPATH=src python benchmarks/bench_simperf.py --json BENCH_simperf.json
    PYTHONPATH=src python benchmarks/bench_simperf.py \
        --baseline benchmarks/simperf_baseline.json

Scores are *normalized by a calibration loop* (a fixed pure-Python
workload timed on the same machine in the same process), so the
committed baseline gates relative simulator efficiency, not absolute
hardware speed — a CI runner half as fast as the baseline machine is
half as fast at the calibration loop too, and the ratio cancels.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict

from repro.core.world import World, WorldConfig
from repro.network.link import Link
from repro.network.packet import Packet
from repro.simkernel import Kernel
from repro.workloads.halo import make_halo
from repro.workloads.mpbench import make_pingpong

SCHEMA = 1
LIMIT_NS = 20_000_000_000_000


# ---------------------------------------------------------------------------
# calibration: fixed pure-Python work, scores hardware + interpreter speed
# ---------------------------------------------------------------------------
def _calibration_ops_per_sec(ops: int = 400_000) -> float:
    acc = 0
    start = time.perf_counter()
    for i in range(ops):
        acc = (acc + i * 31) % 1_000_003
    elapsed = time.perf_counter() - start
    assert acc >= 0
    return ops / elapsed


# ---------------------------------------------------------------------------
# microbenchmarks — each returns (units_done, wall_seconds)
# ---------------------------------------------------------------------------
def bench_kernel_events(n_events: int = 150_000):
    """Events/sec through the kernel's fire-and-forget scheduling path.

    Falls back to ``call_after`` on revisions that predate ``post_after``
    so the harness can bisect across the optimisation boundary.
    """
    kernel = Kernel(seed=1)
    schedule = getattr(kernel, "post_after", kernel.call_after)
    remaining = [n_events]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            schedule(1, tick)

    schedule(1, tick)
    start = time.perf_counter()
    kernel.run()
    return n_events, time.perf_counter() - start


def bench_timer_churn(n_timers: int = 60_000):
    """Schedule+cancel/sec: the retransmission-timer pattern that makes
    lazy deletion and compaction earn their keep."""
    kernel = Kernel(seed=1)
    start = time.perf_counter()
    wave = 2_000
    for base in range(0, n_timers, wave):
        timers = [
            kernel.call_after(1_000_000 + base + i, _noop) for i in range(wave)
        ]
        for timer in timers:
            timer.cancel()
    kernel.run()
    return n_timers, time.perf_counter() - start


def _noop() -> None:
    return None


def bench_link_packets(n_packets: int = 40_000):
    """Packets/sec through a saturated link (tx-complete + prop-delay
    events per packet — the per-packet network hot path)."""
    kernel = Kernel(seed=1)
    done = [0]

    def sink(packet: Packet) -> None:
        done[0] += 1
        if done[0] < n_packets:
            link.send(packet)

    link = Link(
        kernel, "bench", bandwidth_bps=1_000_000_000, prop_delay_ns=1_000, sink=sink
    )
    start = time.perf_counter()
    # keep a small pipeline in flight so the link never idles
    for _ in range(8):
        link.send(
            Packet(src="10.0.0.1", dst="10.0.0.2", proto="bench", payload=None, wire_size=1400)
        )
    kernel.run()
    return done[0], time.perf_counter() - start


def bench_fig8_cell(size: int = 16384, iterations: int = 8):
    """One end-to-end fig8 matrix cell: both stacks, 16 KiB ping-pong.

    The unit reported is *kernel events*, so the score is directly the
    simulator's end-to-end events/sec on real protocol traffic.
    """
    events = 0
    start = time.perf_counter()
    for rpi in ("tcp", "sctp"):
        world = World(WorldConfig(n_procs=2, rpi=rpi, seed=1))
        world.run(make_pingpong(size, iterations), limit_ns=LIMIT_NS)
        events += world.kernel.events_processed
    return events, time.perf_counter() - start


def bench_large_world(n_procs: int = 16, pods: int = 4, size: int = 4096, iterations: int = 3):
    """A large pod-structured world: 16-rank halo exchange across 4 pod
    switches and their trunk mesh, run serially.  This is the exact world
    shape the sharded runner (``repro.bench.pdes``) partitions, so the
    score is the single-process floor a parallel run has to beat.
    """
    start = time.perf_counter()
    world = World(WorldConfig(n_procs=n_procs, rpi="sctp", seed=1, n_pods=pods))
    world.run(make_halo(size, iterations), limit_ns=LIMIT_NS)
    return world.kernel.events_processed, time.perf_counter() - start


BENCHES: Dict[str, Callable] = {
    "kernel_events": bench_kernel_events,
    "timer_churn": bench_timer_churn,
    "link_packets": bench_link_packets,
    "fig8_cell": bench_fig8_cell,
    "large_world": bench_large_world,
}


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------
def run_suite(repeats: int = 3) -> Dict:
    """Run every bench ``repeats`` times, keep the best rate of each."""
    calibration = max(_calibration_ops_per_sec() for _ in range(repeats))
    benches: Dict[str, Dict[str, float]] = {}
    for name, fn in BENCHES.items():
        best_rate = 0.0
        best_seconds = float("inf")
        units = 0
        for _ in range(repeats):
            done, seconds = fn()
            units = done
            best_seconds = min(best_seconds, seconds)
            best_rate = max(best_rate, done / seconds)
        benches[name] = {
            "units": units,
            "seconds": best_seconds,
            "per_sec": best_rate,
            # hardware-independent score: simulator rate relative to the
            # same machine's pure-Python calibration rate
            "normalized": best_rate / calibration,
        }
    return {
        "schema": SCHEMA,
        "calibration_ops_per_sec": calibration,
        "benches": benches,
    }


def check_regression(current: Dict, baseline: Dict, max_regression: float) -> list[str]:
    """Normalized-score regressions beyond the threshold, as messages."""
    failures = []
    for name, base in baseline.get("benches", {}).items():
        cur = current["benches"].get(name)
        if cur is None:
            failures.append(f"{name}: present in baseline but not in current run")
            continue
        floor = base["normalized"] * (1.0 - max_regression)
        if cur["normalized"] < floor:
            failures.append(
                f"{name}: normalized score {cur['normalized']:.4f} is "
                f"{1 - cur['normalized'] / base['normalized']:.0%} below baseline "
                f"{base['normalized']:.4f} (allowed: {max_regression:.0%})"
            )
    return failures


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH", default=None, help="write results JSON")
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="gate normalized scores against this committed baseline",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.10, metavar="FRAC",
        help="fail if any normalized score drops more than FRAC below baseline",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing")
    parser.add_argument(
        "--write-baseline", metavar="PATH", default=None,
        help="write this run's results as the new committed baseline",
    )
    args = parser.parse_args(argv)

    doc = run_suite(repeats=max(1, args.repeats))
    print(f"calibration: {doc['calibration_ops_per_sec']:,.0f} ops/s")
    for name, res in doc["benches"].items():
        print(
            f"  {name:<14} {res['per_sec']:>12,.0f} /s"
            f"  ({res['units']:,} units in {res['seconds']:.3f}s,"
            f" normalized {res['normalized']:.4f})"
        )
    for path in (args.json, args.write_baseline):
        if path:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(doc, sort_keys=True, indent=2) + "\n")
            print(f"wrote {path}")
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
        failures = check_regression(doc, baseline, args.max_regression)
        if failures:
            print("PERF REGRESSION:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"perf gate OK (no normalized score >{args.max_regression:.0%} below baseline)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
