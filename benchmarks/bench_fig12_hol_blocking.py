"""Fig. 12 — head-of-line blocking: 10-stream vs 1-stream SCTP module.

The paper's ablation: identical SCTP module except every TRC maps to
stream 0.  Under loss the single-stream variant re-introduces HOL
blocking (~25% slower for long messages, ~35% at 2% loss for short);
with no loss the two are equivalent.
"""

from repro.bench import fig12_hol_blocking, format_table


def test_fig12_hol_blocking(once):
    rows = once(fig12_hol_blocking)
    print()
    print(format_table("Fig. 12: 10 streams vs 1 stream (SCTP)", rows))
    for row in rows:
        loss = row.label.split("loss=")[1]
        ratio = row.measured["1s/10s"]
        if loss == "0%":
            assert 0.85 < ratio < 1.2, f"{row.label}: equal without loss ({ratio:.2f})"
    # under loss the single-stream penalty must show up somewhere material
    lossy = [r.measured["1s/10s"] for r in rows if "0%" not in r.label.split("loss=")[1]]
    assert max(lossy) > 1.10, f"multistreaming must help under loss: {lossy}"
