"""§3.5.1 extension — multihoming failover.

Not a paper figure (their comparison runs were single-homed, §4 item 4),
but the paper's §3.5.1 argues failover is a key SCTP advantage for MPI:
we sever the primary path mid-run and the application must finish over
the alternate, with retransmissions redirected (§4.1.1 last bullet).
"""

from repro.bench import format_table, multihoming_failover


def test_multihoming_failover(once):
    rows = once(multihoming_failover)
    print()
    print(format_table("Multihoming: primary-path failure mid-run", rows))
    row = rows[0]
    assert row.measured["completed"], "the MPI program must survive path failure"
    assert row.measured["failover_retransmits"] > 0, (
        "retransmissions must have been redirected to the alternate path"
    )
