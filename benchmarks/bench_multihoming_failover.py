"""§3.5.1 extension — multihoming failover.

Not a paper figure (their comparison runs were single-homed, §4 item 4),
but the paper's §3.5.1 argues failover is a key SCTP advantage for MPI:
a ``repro.faults`` blackhole severs the primary path mid-run and the
application must finish over the alternate, with retransmissions
redirected (§4.1.1 last bullet).
"""

from repro.bench import format_table, multihoming_failover

# KAME's minimum RTO is 1s, so the first T3 expiry — the earliest moment
# SCTP can notice the dead path and retransmit elsewhere — lands ~1s
# after the blackhole opens.  Recovery much beyond 2x that means the
# failover machinery is not actually redirecting traffic.
RECOVERY_BOUND_S = 2.0


def test_multihoming_failover(once):
    rows = once(multihoming_failover)
    print()
    print(format_table("Multihoming: primary-path failure mid-run", rows))
    row = rows[0]
    assert row.measured["completed"], "the MPI program must survive path failure"
    assert row.measured["failover_retransmits"] > 0, (
        "retransmissions must have been redirected to the alternate path"
    )
    assert row.measured["path_failures"] > 0, (
        "path supervision must have declared the severed path INACTIVE"
    )
    recovery_s = row.measured["recovery_s"]
    assert 0 < recovery_s < RECOVERY_BOUND_S, (
        f"delivery resumed {recovery_s}s after the blackhole; failover "
        f"should recover within {RECOVERY_BOUND_S}s (~2x the 1s min RTO)"
    )
