"""Shared benchmark plumbing.

Every bench runs its whole experiment once inside ``benchmark.pedantic``
(the interesting numbers are *virtual-time* metrics printed as
paper-vs-measured tables; pytest-benchmark's wall-clock numbers just
document simulation cost).  ``REPRO_FULL=1`` switches to paper-scale
parameters.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    box = {}

    def call():
        box["result"] = fn(*args, **kwargs)

    benchmark.pedantic(call, rounds=1, iterations=1, warmup_rounds=0)
    return box["result"]


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
