"""Chaos matrix — every repro.faults scenario against both stacks.

Not a paper figure: the paper induced faults one mechanism at a time
(Dummynet loss for §4, path failure for §3.5.1, adversarial packets for
§3.5.2).  The chaos matrix sweeps the whole scenario library and checks
the qualitative claims hold per mechanism: SCTP rides a primary-path
blackhole out via failover while TCP must sit through RTO backoff, and
corruption is rejected by integrity checks on both stacks.
"""

from repro.bench import chaos_matrix, format_table


def test_chaos_matrix(once):
    rows = once(chaos_matrix)
    print()
    print(format_table("Chaos matrix: fault scenarios x both stacks", rows))
    by_label = {row.label: row.measured for row in rows}

    # every cell completed inside the virtual-time watchdog
    assert len(rows) == 10

    # blackhole: SCTP's failover beats TCP's RTO backoff on both recovery
    # time (first data after the hole opened) and total run time
    tcp_hole = by_label["tcp blackhole 2s"]
    sctp_hole = by_label["sctp blackhole 2s"]
    assert sctp_hole["failovers"] > 0, "SCTP must migrate to the alternate path"
    assert tcp_hole["rto_events"] > 0, "TCP can only wait out its RTO backoff"
    assert sctp_hole["recovery_s"] < tcp_hole["recovery_s"], (
        "SCTP failover must restore delivery before TCP's backed-off "
        "retransmit gets through the re-opened path"
    )
    assert sctp_hole["elapsed_s"] < tcp_hole["elapsed_s"]

    # corruption: dropped by CRC32c / checksum, never delivered
    assert by_label["sctp corrupt 2%"]["integrity_drops"] > 0
    assert by_label["tcp corrupt 2%"]["integrity_drops"] > 0

    # duplication/reordering is absorbed without a single timeout
    assert by_label["sctp dup+reorder"]["rto_events"] == 0
    assert by_label["tcp dup+reorder"]["rto_events"] == 0
