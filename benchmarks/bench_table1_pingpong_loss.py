"""Table 1 — ping-pong under 1% / 2% loss, 30 KiB and 300 KiB messages.

Paper shape: SCTP beats TCP at every loss/size cell (28x/43x at 30 KiB,
~3.2x at 300 KiB).  Our reproduction preserves the *direction* where the
mechanism survives faithful stack modelling: at 2% loss SCTP wins both
sizes (multi-loss windows repaired in one SACK round vs NewReno's
hole-per-RTT); at 1% the protocols are near parity because both repair
isolated mid-burst losses in one RTT and pay the same 1 s minimum RTO on
tail drops.  The paper's far larger factors are discussed (and not
blindly asserted) in EXPERIMENTS.md.
"""

from repro.bench import format_table, table1_pingpong_loss


def test_table1_pingpong_loss(once):
    rows = once(table1_pingpong_loss)
    print()
    print(format_table("Table 1: ping-pong throughput under loss", rows))
    by_cell = {r.label: r.measured["sctp/tcp"] for r in rows}
    # at 2% loss SCTP must win both message sizes (paper's direction)
    assert by_cell["pingpong 30K loss=2%"] > 1.0
    assert by_cell["pingpong 300K loss=2%"] > 1.0
    # overall, SCTP comes out ahead under loss
    mean_ratio = sum(by_cell.values()) / len(by_cell)
    assert mean_ratio > 1.1, f"SCTP should win on average under loss: {by_cell}"
