"""Extension — the CRC32c checksum cost (paper §3.6 / §4 setup item 5).

The paper disabled SCTP's CRC32c in the kernel because TCP offloads its
checksum to the NIC while CRC32c burned CPU.  Our cost model carries the
documented per-KiB charge; this bench quantifies what the paper's setup
decision avoided: ping-pong throughput with the checksum on vs off.
"""

from repro.bench.harness import scaled
from repro.core.world import WorldConfig
from repro.network import CostModel
from repro.workloads.mpbench import run_pingpong

LIMIT = 20_000_000_000_000


def test_crc32c_overhead(once):
    def experiment():
        size = 128 * 1024
        iters = scaled(12, 50)
        out = {}
        for label, cm in (("off", CostModel()), ("on", CostModel().with_crc32c())):
            cfg = WorldConfig(n_procs=2, rpi="sctp", cost_model=cm)
            out[label] = run_pingpong(
                "sctp", size, iterations=iters, seed=1, config=cfg, limit_ns=LIMIT
            )
        return out

    results = once(experiment)
    off = results["off"].throughput_bytes_per_s
    on = results["on"].throughput_bytes_per_s
    print()
    print("== Extension: SCTP CRC32c checksum cost (128 KiB ping-pong) ==")
    print(f"  crc32c off: {off / 1e6:7.2f} MB/s   (the paper's configuration)")
    print(f"  crc32c on : {on / 1e6:7.2f} MB/s   ({1 - on / off:.0%} slower)")
    assert on < off, "the checksum must cost throughput"
    assert on > 0.5 * off, "but not absurdly much"
