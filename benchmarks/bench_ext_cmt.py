"""Extension — Concurrent Multipath Transfer (paper §5).

The paper closes by pointing at CMT ([13,14], "will be available as a
sysctl option by the end of year 2005") as the way to use multihoming for
*throughput*, not just failover.  We built it (``SCTPConfig(cmt=True)``,
with split fast retransmit) and measure what the paper anticipated: bulk
transfer over two gigabit paths approaching twice the single-path rate,
with TEG-style striping available to MPI programs transparently.
"""

from repro.bench.harness import scaled
from repro.core.world import World, WorldConfig
from repro.transport.sctp import SCTPConfig
from repro.util.blobs import SyntheticBlob

LIMIT = 20_000_000_000_000


async def _bulk_app(comm):
    piece = 64_000
    n_pieces = scaled(4_000_000, 20_000_000) // piece
    total = n_pieces * piece
    if comm.rank == 0:
        for _ in range(n_pieces):
            await comm.send(SyntheticBlob(piece), dest=1, tag=1)
        return None
    start = comm.process.kernel.now
    got = 0
    while got < total:
        blob = await comm.recv(source=0, tag=1)
        got += blob.nbytes
    elapsed = comm.process.kernel.now - start
    return got / (elapsed / 1e9)


def _mature_stack_cost_model():
    """The calibrated 2005 cost model is host-CPU bound near one gigabit —
    with it, CMT cannot help (a finding in itself, printed below).  To
    evaluate CMT's *transport* potential the way [13,14] does, this bench
    also runs with a mature-stack model whose per-byte costs leave the
    wire as the bottleneck."""
    from repro.network import CostModel

    return CostModel(
        sctp_syscall_ns=1_500,
        sctp_middleware_per_kib_ns=600,
        sctp_packet_send_ns=1_200,
        sctp_packet_recv_ns=1_200,
    )


def test_cmt_throughput(once):
    def experiment():
        out = {}
        for label, n_paths, cmt, cm in (
            ("1 path (2005 stack)", 1, False, None),
            ("2 paths CMT (2005 stack)", 2, True, None),
            ("1 path (mature stack)", 1, False, _mature_stack_cost_model()),
            ("2 paths failover-only", 2, False, _mature_stack_cost_model()),
            ("2 paths CMT (mature)", 2, True, _mature_stack_cost_model()),
        ):
            kwargs = {} if cm is None else {"cost_model": cm}
            config = WorldConfig(
                n_procs=2, rpi="sctp", n_paths=n_paths, seed=1,
                sctp_config=SCTPConfig(cmt=cmt), **kwargs,
            )
            result = World(config).run(_bulk_app, limit_ns=LIMIT)
            out[label] = result.results[1]
        return out

    results = once(experiment)
    print()
    print("== Extension: Concurrent Multipath Transfer (bulk, 2x1GbE) ==")
    for label, bps in results.items():
        print(f"  {label:<26} {bps / 1e6:8.2f} MB/s")
    # with the 2005 stack the host CPU is the ceiling: CMT cannot help
    y2005 = results["1 path (2005 stack)"]
    assert abs(results["2 paths CMT (2005 stack)"] - y2005) < 0.25 * y2005
    # with a mature stack the wire is the ceiling: CMT aggregates paths
    base = results["1 path (mature stack)"]
    assert abs(results["2 paths failover-only"] - base) < 0.25 * base, (
        "without CMT the second path must stay idle"
    )
    assert results["2 paths CMT (mature)"] > 1.5 * base, (
        "CMT must aggregate the paths once the wire is the bottleneck"
    )
