"""Extension — select() cost growth with process count (paper §3.3).

The paper argues the TCP RPI's socket-per-peer + ``select()`` design
scales poorly: select's cost grows linearly with descriptor count [20],
and *every* descriptor is hot during collectives.  The SCTP RPI's single
one-to-many socket avoids the call entirely.  This bench measures the
middleware CPU burned per rank during an allreduce+alltoall workload as
the job grows.
"""

from repro.bench.harness import scaled
from repro.core.world import World, WorldConfig

LIMIT = 20_000_000_000_000


async def _collective_storm(comm):
    for _ in range(8):
        await comm.allreduce(comm.rank)
        await comm.alltoall([comm.rank] * comm.size)
    await comm.barrier()
    return comm.process.host.cpu.total_busy_ns


def test_select_cost_scales_with_job_size(once):
    def experiment():
        out = {}
        sizes = (4, 8, 12) if not scaled(0, 1) else (4, 8, 16)
        for n in sizes:
            for rpi in ("tcp", "sctp"):
                world = World(WorldConfig(n_procs=n, rpi=rpi, seed=1))
                result = world.run(_collective_storm, limit_ns=LIMIT)
                selects = 0
                if rpi == "tcp":
                    selects = sum(p.rpi.selector.calls for p in world.processes)
                out[(n, rpi)] = (result.duration_ns, selects)
        return out

    results = once(experiment)
    print()
    print("== Extension: select() scalability (collective storm) ==")
    print(f"{'np':>4} {'tcp ms':>9} {'sctp ms':>9} {'tcp select() calls':>19}")
    sizes = sorted({n for n, _ in results})
    for n in sizes:
        tcp_ns, selects = results[(n, "tcp")]
        sctp_ns, _ = results[(n, "sctp")]
        print(f"{n:>4} {tcp_ns / 1e6:>9.2f} {sctp_ns / 1e6:>9.2f} {selects:>19}")
    # select volume must grow with job size; SCTP never selects at all
    assert results[(sizes[-1], "tcp")][1] > results[(sizes[0], "tcp")][1]
