"""Fig. 10 — Bulk Processor Farm, Fanout=1, short (30K) and long (300K).

Paper shape: comparable at no loss; under 1-2% loss TCP's run time blows
up by ~10x (short) and ~2.6x (long) relative to SCTP.
"""

from repro.bench import fig10_farm, format_table


def test_fig10_farm(once):
    rows = once(fig10_farm)
    print()
    print(format_table("Fig. 10: farm run times, fanout=1", rows))
    for row in rows:
        loss = row.label.split("loss=")[1]
        ratio = row.measured["tcp/sctp"]
        if loss == "0%":
            assert 0.4 < ratio < 2.5, f"{row.label}: no-loss runs comparable"
        elif "short" in row.label:
            assert ratio > 2.0, (
                f"{row.label}: TCP must degrade sharply under loss, got {ratio:.2f}x"
            )
        else:
            # paper: ~2.6x for long messages; our per-seed spread at demo
            # scale is wide, so guard the direction with margin
            assert ratio > 1.3, (
                f"{row.label}: TCP must degrade under loss, got {ratio:.2f}x"
            )
