"""Fig. 4/5 — the two-tag Waitany microscenario (design §3.2.3).

P1 sends Msg-A then Msg-B on different tags; P0's Waitany should be able
to complete on whichever arrives.  Over TCP it can only ever complete on
Msg-A (byte-stream order); over SCTP, Msg-B overtakes when loss delays
Msg-A, and the mean wait until *some* message is available collapses.
"""

from repro.bench.harness import scaled
from repro.workloads.hol_micro import run_hol_micro

LIMIT = 20_000_000_000_000


def test_fig4_hol_micro(once):
    def experiment():
        iters = scaled(50, 200)
        out = {}
        for rpi in ("tcp", "sctp"):
            out[rpi] = run_hol_micro(
                rpi, iterations=iters, loss_rate=0.02, seed=2, limit_ns=LIMIT
            )
        return out

    results = once(experiment)
    tcp, sctp = results["tcp"], results["sctp"]
    print()
    print("== Fig. 4/5: Waitany under 2% loss (8 KiB messages) ==")
    for name, r in results.items():
        print(
            f"  {name:<5} B-completed-first: {r.b_first_fraction:5.1%}   "
            f"mean wait for first message: {r.mean_first_completion_ns / 1e6:9.3f} ms"
        )
    assert tcp.b_first_fraction == 0.0, "TCP byte stream can never deliver B first"
    assert sctp.b_first_fraction > 0.0, "SCTP streams must let B overtake"
    assert sctp.mean_first_completion_ns < tcp.mean_first_completion_ns / 2, (
        "SCTP must slash the wait for the first available message"
    )
