#!/usr/bin/env python3
"""Head-of-line blocking, made visible (paper Fig. 4/5 and Fig. 12).

Part 1 runs the two-tag Waitany microscenario: under loss, TCP can only
ever hand the application Msg-A first (byte-stream order), while SCTP's
streams let Msg-B overtake a damaged Msg-A and slash the time the
application waits for *something* to work on.

Part 2 runs the farm with the SCTP module's stream pool set to 1 —
the paper's ablation — showing that the win really comes from
multistreaming, not from SCTP's other machinery.

Run:  python examples/hol_blocking.py
"""

from repro.workloads.farm import FarmParams, run_farm
from repro.workloads.hol_micro import run_hol_micro


def main():
    print("-- Fig. 4/5 microscenario: Waitany on two tags, 2% loss --")
    for rpi in ("tcp", "sctp"):
        r = run_hol_micro(rpi, iterations=40, loss_rate=0.02, seed=2)
        print(
            f"  {rpi:>4}: second-sent message arrived first in "
            f"{r.b_first_fraction:5.1%} of rounds; mean wait for the first "
            f"message {r.mean_first_completion_ns / 1e6:8.2f} ms"
        )

    print()
    print("-- Fig. 12 ablation: SCTP with 10 streams vs 1 stream, 2% loss --")
    params = FarmParams(num_tasks=150, task_size=30 * 1024, fanout=10)
    multi = run_farm("sctp", params, loss_rate=0.02, seed=3, num_streams=10)
    single = run_farm("sctp", params, loss_rate=0.02, seed=3, num_streams=1)
    print(f"  10 streams: {multi.elapsed_s:7.2f} s")
    print(
        f"   1 stream : {single.elapsed_s:7.2f} s "
        f"({single.elapsed_s / multi.elapsed_s - 1:+.0%} — pure HOL penalty)"
    )


if __name__ == "__main__":
    main()
