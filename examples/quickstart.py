#!/usr/bin/env python3
"""Quickstart: an MPI program on the simulated cluster, over both RPIs.

Four ranks exchange point-to-point messages (eager and rendezvous) and
run collectives, once over the LAM-TCP-style RPI and once over the
paper's SCTP RPI.  Everything happens in virtual time on a simulated
gigabit cluster — the printed times are what the protocols would take,
not wall-clock.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import run_app
from repro.util.blobs import SyntheticBlob


async def application(comm):
    """A small but representative MPI program."""
    rank, size = comm.rank, comm.size

    # --- point-to-point: ring of eager (short) messages ----------------
    right = (rank + 1) % size
    left = (rank - 1) % size
    send = comm.isend({"from": rank, "payload": list(range(rank))}, dest=right, tag=1)
    token = await comm.recv(source=left, tag=1)
    await comm.wait(send)
    assert token["from"] == left

    # --- a long (rendezvous) message: rank 0 ships an array to rank 1 --
    if rank == 0:
        await comm.send(np.linspace(0.0, 1.0, 40_000), dest=1, tag=2)  # 320 KB
    elif rank == 1:
        array = await comm.recv(source=0, tag=2)
        assert len(array) == 40_000

    # --- benchmark-style synthetic payload (bytes accounted, not moved) -
    if rank == 2:
        await comm.send(SyntheticBlob(100_000), dest=3, tag=3)
    elif rank == 3:
        blob = await comm.recv(source=2, tag=3)
        assert blob.nbytes == 100_000

    # --- collectives -----------------------------------------------------
    total = await comm.allreduce(rank)
    ranks = await comm.allgather(rank)
    await comm.barrier()
    return {"rank": rank, "sum": total, "ranks": ranks}


def main():
    for rpi in ("tcp", "sctp"):
        result = run_app(application, n_procs=4, rpi=rpi, seed=42)
        r0 = result.results[0]
        print(
            f"[{rpi:>4}] finished in {result.duration_ns / 1e6:7.3f} ms of "
            f"virtual time; allreduce(rank) = {r0['sum']}, "
            f"allgather = {r0['ranks']}"
        )


if __name__ == "__main__":
    main()
