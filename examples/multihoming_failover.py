#!/usr/bin/env python3
"""Multihoming failover (paper §3.5.1).

Every node gets two NICs on two independent switched subnets.  A
``repro.faults`` blackhole scenario kills every host's primary-path
egress 3 ms in; SCTP's path supervision marks the primary INACTIVE,
redirects retransmissions to the alternate address (§4.1.1, last
bullet), and the MPI program finishes without the application noticing
anything but a hiccup.  TCP has no equivalent (§3.5.1: "there is no
similar mechanism in TCP").

Run:  python examples/multihoming_failover.py
"""

from repro.core.world import World, WorldConfig
from repro.faults import DeliveryWatch, primary_blackhole
from repro.simkernel import MILLISECOND, SECOND
from repro.transport.sctp import SCTPConfig
from repro.workloads.mpbench import make_pingpong

FAULT_START = 3 * MILLISECOND


def main():
    config = WorldConfig(
        n_procs=2,
        rpi="sctp",
        n_paths=2,
        seed=11,
        sctp_config=SCTPConfig(path_max_retrans=1, heartbeat_interval_ns=2 * SECOND),
        # permanent: the primary path never comes back
        scenario=primary_blackhole(start_ns=FAULT_START, duration_ns=0),
    )
    world = World(config)
    watch = DeliveryWatch("sctp", fault_start_ns=FAULT_START)
    watch.attach(world.cluster.hosts)

    result = world.run(make_pingpong(30 * 1024, 40))
    print(f"ping-pong finished in {result.duration_ns / 1e9:.2f} s of virtual time")
    print(f"  delivery resumed {watch.recovery_ns / 1e9:.2f} s after the outage")
    for proc in world.processes:
        for assoc in proc.rpi.sock._assocs.values():
            states = {a: p.state for a, p in assoc.paths.items()}
            print(
                f"  rank {proc.rank}: paths {states}, "
                f"retransmits redirected to alternate: {assoc.stats.failovers}"
            )


if __name__ == "__main__":
    main()
