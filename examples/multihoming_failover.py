#!/usr/bin/env python3
"""Multihoming failover (paper §3.5.1).

Every node gets two NICs on two independent switched subnets.  Mid-run
we power off the primary subnet's switch; SCTP's path supervision marks
the primary INACTIVE, redirects retransmissions to the alternate address
(§4.1.1, last bullet), and the MPI program finishes without the
application noticing anything but a hiccup.  TCP has no equivalent
(§3.5.1: "there is no similar mechanism in TCP").

Run:  python examples/multihoming_failover.py
"""

from repro.core.world import World, WorldConfig
from repro.simkernel import SECOND
from repro.transport.sctp import SCTPConfig
from repro.workloads.mpbench import make_pingpong


def main():
    config = WorldConfig(
        n_procs=2,
        rpi="sctp",
        n_paths=2,
        seed=11,
        sctp_config=SCTPConfig(path_max_retrans=1, heartbeat_interval_ns=2 * SECOND),
    )
    world = World(config)
    world.kernel.call_after(3_000_000, _kill_primary, world)  # t = 3 ms

    result = world.run(make_pingpong(30 * 1024, 40))
    print(f"ping-pong finished in {result.duration_ns / 1e9:.2f} s of virtual time")
    for proc in world.processes:
        for assoc in proc.rpi.sock._assocs.values():
            states = {a: p.state for a, p in assoc.paths.items()}
            print(
                f"  rank {proc.rank}: paths {states}, "
                f"retransmits redirected to alternate: {assoc.stats.failovers}"
            )


def _kill_primary(world):
    print("  !! primary subnet switch failed")
    world.cluster.fail_path(0)


if __name__ == "__main__":
    main()
