#!/usr/bin/env python3
"""Mini NAS Parallel Benchmarks over both transports (paper Fig. 9).

Runs the seven NPB mini-kernels the paper used (FT omitted, as there) at
class W on eight simulated nodes, printing Mop/s per RPI.  Use class B
and the benchmark suite for the full Fig. 9 reproduction.

Run:  python examples/nas_demo.py [CLASS]
"""

import sys

from repro.workloads.npb import run_npb

KERNEL_ORDER = ["LU", "SP", "EP", "CG", "BT", "MG", "IS"]


def main():
    cls = sys.argv[1] if len(sys.argv) > 1 else "W"
    print(f"NPB mini-kernels, class {cls}, 8 processes")
    print(f"{'kernel':>7} {'tcp Mop/s':>11} {'sctp Mop/s':>11} {'sctp/tcp':>9}  verified")
    for name in KERNEL_ORDER:
        tcp = run_npb(name, cls, rpi="tcp", seed=1)
        sctp = run_npb(name, cls, rpi="sctp", seed=1)
        print(
            f"{name:>7} {tcp.mops:>11.1f} {sctp.mops:>11.1f} "
            f"{sctp.mops / tcp.mops:>9.2f}  {tcp.verified and sctp.verified}"
        )


if __name__ == "__main__":
    main()
