#!/usr/bin/env python3
"""The paper's Bulk Processor Farm, SCTP vs TCP, with and without loss.

Reproduces the Fig. 10 experiment at demo scale: a manager hands out
30 KiB tasks of ten different types (tags) to seven workers that each
keep ten requests outstanding.  Under 1-2% loss the TCP middleware
serializes everything behind each lost segment while the SCTP module's
streams keep undamaged task types flowing.

Run:  python examples/farm_demo.py
"""

from repro.workloads.farm import FarmParams, run_farm


def main():
    params = FarmParams(
        num_tasks=200,
        task_size=30 * 1024,
        max_work_tags=10,
        outstanding_requests=10,
        fanout=1,
        compute_seconds_per_task=0.004,
    )
    print(f"farm: {params.num_tasks} tasks x {params.task_size // 1024} KiB, "
          f"7 workers, fanout={params.fanout}")
    print(f"{'loss':>6} {'tcp (s)':>10} {'sctp (s)':>10} {'tcp/sctp':>9}")
    for loss in (0.0, 0.01, 0.02):
        tcp = run_farm("tcp", params, loss_rate=loss, seed=7)
        sctp = run_farm("sctp", params, loss_rate=loss, seed=7)
        print(
            f"{loss:>6.0%} {tcp.elapsed_s:>10.2f} {sctp.elapsed_s:>10.2f} "
            f"{tcp.elapsed_s / sctp.elapsed_s:>8.1f}x"
        )


if __name__ == "__main__":
    main()
